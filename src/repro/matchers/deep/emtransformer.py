"""EMTransformer stand-in: dynamic + heterogeneous + local (Table II row 2).

Brunner & Stockinger apply a BERT-family model out of the box to the
sequence-pair "[CLS] seq1 [SEP] seq2 [SEP]": all attribute values of each
record are concatenated into one sequence (heterogeneous — misplaced values
cost nothing) and each pair is classified independently (local). The
``variant`` selects the checkpoint: "B" (BERT) or "R" (RoBERTa).

The representation feeds the head with the standard sentence-pair features
[u * v, |u - v|] plus their cosine — the information a fine-tuned CLS head
extracts from the two sequence encodings.
"""

from __future__ import annotations

import numpy as np

from repro.data.pairs import RecordPair
from repro.data.task import MatchingTask
from repro.embeddings.contextual import ContextualEmbedder
from repro.embeddings.distances import cosine_vector_similarity
from repro.embeddings.provider import contextual_embedder_for_task
from repro.matchers.deep.base import DeepMatcherBase
from repro.matchers.deep.lexical import LexicalEvidence
from repro.text.tokenize import tokenize
from repro.text.vectorize import TfIdfVectorizer


class EMTransformerNet(DeepMatcherBase):
    """Sequence-pair classification over contextual record encodings."""

    def __init__(
        self, variant: str = "B", epochs: int = 15, seed: int = 0
    ) -> None:
        if variant not in ("B", "R"):
            raise ValueError(f"variant must be 'B' or 'R', got {variant!r}")
        super().__init__(
            name=f"EMTransformer-{variant} ({epochs})",
            epochs=epochs,
            seed=seed + (0 if variant == "B" else 1),
        )
        self.variant = variant
        self._embedder: ContextualEmbedder | None = None
        self._record_cache: dict[str, np.ndarray] = {}
        self._lexical: LexicalEvidence | None = None

    def _prepare(self, task: MatchingTask) -> None:
        self._embedder = contextual_embedder_for_task(task, variant=self.variant)
        self._record_cache = {}
        corpus = [
            tokenize(record.full_text())
            for record in list(task.left) + list(task.right)
        ]
        corpus = [tokens for tokens in corpus if tokens]
        self._lexical = LexicalEvidence(TfIdfVectorizer().fit(corpus))

    def _record_vector(self, record) -> np.ndarray:
        assert self._embedder is not None
        cached = self._record_cache.get(record.record_id)
        if cached is None:
            cached = self._embedder.embed_record(record)
            self._record_cache[record.record_id] = cached
        return cached

    def _represent(self, pair: RecordPair) -> np.ndarray:
        assert self._lexical is not None
        left = self._record_vector(pair.left)
        right = self._record_vector(pair.right)
        return np.concatenate(
            (
                left * right,
                np.abs(left - right),
                [cosine_vector_similarity(left, right)],
                self._lexical.features(pair),
            )
        )
