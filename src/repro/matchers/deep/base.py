"""Shared trunk of the deep matcher stand-ins.

A deep matcher is: a *representation* (how a candidate pair becomes a dense
vector, defined per subclass and where the taxonomy differences live) plus a
*classification head* (an MLP with highway layers, shared). Training runs
``epochs`` epochs of minibatch Adam and keeps the parameters of the best
validation-F1 epoch, exactly the model-selection protocol the paper enforces
on EMTransformer (Section V-B).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.task import MatchingTask
from repro.matchers.base import Matcher
from repro.ml.mlp import MLPClassifier


class DeepMatcherBase(Matcher):
    """Representation + highway-MLP head with validation model selection."""

    def __init__(
        self,
        name: str,
        epochs: int,
        hidden_size: int = 48,
        n_highway: int = 2,
        learning_rate: float = 5e-3,
        batch_size: int = 64,
        seed: int = 0,
    ) -> None:
        super().__init__(name=name)
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.epochs = epochs
        self.hidden_size = hidden_size
        self.n_highway = n_highway
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.seed = seed
        self._head: MLPClassifier | None = None

    # -- subclass hooks ------------------------------------------------------

    @abc.abstractmethod
    def _prepare(self, task: MatchingTask) -> None:
        """Build embedders/caches for *task* before representing pairs."""

    @abc.abstractmethod
    def _represent(self, pair: RecordPair) -> np.ndarray:
        """The dense feature vector of one candidate pair."""

    def _augment(
        self, features: np.ndarray, labels: np.ndarray, task: MatchingTask
    ) -> tuple[np.ndarray, np.ndarray]:
        """Optional training-set augmentation hook (DITTO overrides)."""
        return features, labels

    # -- Matcher implementation ----------------------------------------------

    def representation_matrix(self, pairs: LabeledPairSet) -> np.ndarray:
        """(n_pairs, dim) representation matrix in pair order."""
        return np.stack([self._represent(pair) for pair, __ in pairs])

    def _fit(self, task: MatchingTask) -> None:
        self._prepare(task)
        training = self.representation_matrix(task.training)
        validation = self.representation_matrix(task.validation)
        features, labels = self._augment(
            training, task.training.labels, task
        )
        self._head = MLPClassifier(
            hidden_size=self.hidden_size,
            n_highway=self.n_highway,
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            seed=self.seed,
        )
        self._head.fit(
            features,
            labels,
            validation_features=validation,
            validation_labels=task.validation.labels,
        )

    def _predict(self, pairs: LabeledPairSet) -> np.ndarray:
        assert self._head is not None
        return self._head.predict(self.representation_matrix(pairs))

    def decision_scores(self, pairs: LabeledPairSet) -> np.ndarray:
        """Match probabilities (used by GNEM's global propagation)."""
        if self._head is None:
            raise RuntimeError(f"{self.name} is not fitted; call fit() first")
        return self._head.predict_proba(self.representation_matrix(pairs))
