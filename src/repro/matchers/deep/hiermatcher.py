"""HierMatcher stand-in: hierarchical cross-attribute matching (Table II row 5).

Fu et al. build a four-layer hierarchy: token representations, a
*cross-attribute* token matching layer (each token aligns against every
token of the other record, not only the same attribute — the heterogeneous
ingredient), attribute-level aggregation weighted by token importance, and
an entity-level comparison vector.

The representation mirrors that structure on static embeddings: for every
attribute, the IDF-weighted mean of each token's best alignment score
against all tokens of the other record (both directions), topped by two
record-level alignment scores.
"""

from __future__ import annotations

import numpy as np

from repro.data.pairs import RecordPair
from repro.data.records import Record
from repro.data.task import MatchingTask
from repro.embeddings.provider import static_embedder_for_task
from repro.embeddings.static import StaticEmbedder
from repro.matchers.deep.base import DeepMatcherBase
from repro.text.tokenize import tokenize
from repro.text.vectorize import TfIdfVectorizer


class HierMatcherNet(DeepMatcherBase):
    """Token -> attribute -> entity alignment features + MLP head."""

    def __init__(self, epochs: int = 10, seed: int = 0) -> None:
        super().__init__(
            name=f"HierMatcher ({epochs})", epochs=epochs, seed=seed + 37
        )
        self._embedder: StaticEmbedder | None = None
        self._vectorizer: TfIdfVectorizer | None = None
        self._attributes: tuple[str, ...] = ()
        self._token_matrix_cache: dict[str, tuple[list[str], np.ndarray]] = {}

    def _prepare(self, task: MatchingTask) -> None:
        self._embedder = static_embedder_for_task(task)
        self._attributes = task.attributes
        corpus = [
            tokenize(record.full_text())
            for record in list(task.left) + list(task.right)
        ]
        corpus = [tokens for tokens in corpus if tokens]
        self._vectorizer = TfIdfVectorizer().fit(corpus)
        self._token_matrix_cache = {}

    def _record_tokens_matrix(
        self, record: Record
    ) -> tuple[list[str], np.ndarray]:
        """(tokens, unit-normalized token-vector matrix) of a whole record."""
        assert self._embedder is not None
        cached = self._token_matrix_cache.get(record.record_id)
        if cached is None:
            tokens = tokenize(record.full_text())
            if tokens:
                matrix = np.stack(
                    [self._embedder.embed_token(token) for token in tokens]
                )
                norms = np.linalg.norm(matrix, axis=1, keepdims=True)
                norms[norms == 0] = 1.0
                matrix = matrix / norms
            else:
                matrix = np.zeros((0, self._embedder.dimension))
            cached = (tokens, matrix)
            self._token_matrix_cache[record.record_id] = cached
        return cached

    def _alignment(
        self,
        tokens: list[str],
        matrix: np.ndarray,
        other_matrix: np.ndarray,
    ) -> float:
        """IDF-weighted mean best-alignment of *tokens* against the other
        record's token matrix (cosine, mapped to [0, 1])."""
        assert self._vectorizer is not None
        if not tokens or other_matrix.shape[0] == 0:
            return 0.0
        similarities = matrix @ other_matrix.T  # rows: this record's tokens
        best = (similarities.max(axis=1) + 1.0) / 2.0
        weights = np.asarray([self._vectorizer.idf(token) for token in tokens])
        total = weights.sum()
        if total == 0:
            return float(best.mean())
        return float((best * weights).sum() / total)

    def _represent(self, pair: RecordPair) -> np.ndarray:
        left_tokens, left_matrix = self._record_tokens_matrix(pair.left)
        right_tokens, right_matrix = self._record_tokens_matrix(pair.right)
        values: list[float] = []
        # Attribute layer: each attribute's tokens aligned cross-attribute
        # against the entire other record.
        left_cursor = 0
        right_cursor = 0
        for attribute in self._attributes:
            left_attr_tokens = tokenize(pair.left.value(attribute))
            right_attr_tokens = tokenize(pair.right.value(attribute))
            left_slice = left_matrix[
                left_cursor : left_cursor + len(left_attr_tokens)
            ]
            right_slice = right_matrix[
                right_cursor : right_cursor + len(right_attr_tokens)
            ]
            left_cursor += len(left_attr_tokens)
            right_cursor += len(right_attr_tokens)
            values.append(
                self._alignment(left_attr_tokens, left_slice, right_matrix)
            )
            values.append(
                self._alignment(right_attr_tokens, right_slice, left_matrix)
            )
        # Entity layer: record-level alignment in both directions.
        values.append(self._alignment(left_tokens, left_matrix, right_matrix))
        values.append(self._alignment(right_tokens, right_matrix, left_matrix))
        return np.asarray(values, dtype=np.float64)
