"""GNEM stand-in: the global method (Table II row 3).

Chen et al. consider *all* candidate pairs produced by blocking together:
pairs that share a record are related, and an interaction (gated graph
convolution) layer lets each pair's match likelihood be influenced by its
neighbours — e.g. in a one-to-one linkage, a record strongly matched to one
candidate argues against its other candidates.

This implementation trains the local head on dynamic (BERT-like) sequence
encodings — the configuration the paper selects — then applies one gated
propagation step over the candidate-pair graph of the full task at
prediction time: the propagated score mixes a pair's own probability with
the (inverted) evidence of competing pairs that share one of its records.
"""

from __future__ import annotations

import numpy as np

from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.task import MatchingTask
from repro.embeddings.contextual import ContextualEmbedder
from repro.embeddings.distances import cosine_vector_similarity
from repro.embeddings.provider import contextual_embedder_for_task
from repro.matchers.deep.base import DeepMatcherBase
from repro.matchers.deep.lexical import LexicalEvidence
from repro.text.tokenize import tokenize
from repro.text.vectorize import TfIdfVectorizer


class GnemNet(DeepMatcherBase):
    """Local dynamic encoder + one global propagation step over pairs."""

    def __init__(
        self, epochs: int = 10, propagation: float = 0.25, seed: int = 0
    ) -> None:
        super().__init__(name=f"GNEM ({epochs})", epochs=epochs, seed=seed + 23)
        if not 0.0 <= propagation < 1.0:
            raise ValueError(f"propagation must be in [0, 1), got {propagation}")
        self.propagation = propagation
        self._embedder: ContextualEmbedder | None = None
        self._record_cache: dict[str, np.ndarray] = {}
        self._lexical: LexicalEvidence | None = None

    def _prepare(self, task: MatchingTask) -> None:
        self._embedder = contextual_embedder_for_task(task, variant="B")
        self._record_cache = {}
        corpus = [
            tokenize(record.full_text())
            for record in list(task.left) + list(task.right)
        ]
        corpus = [tokens for tokens in corpus if tokens]
        self._lexical = LexicalEvidence(TfIdfVectorizer().fit(corpus))

    def _record_vector(self, record) -> np.ndarray:
        assert self._embedder is not None
        cached = self._record_cache.get(record.record_id)
        if cached is None:
            cached = self._embedder.embed_record(record)
            self._record_cache[record.record_id] = cached
        return cached

    def _represent(self, pair: RecordPair) -> np.ndarray:
        assert self._lexical is not None
        left = self._record_vector(pair.left)
        right = self._record_vector(pair.right)
        return np.concatenate(
            (
                left * right,
                np.abs(left - right),
                [cosine_vector_similarity(left, right)],
                self._lexical.features(pair),
            )
        )

    def _predict(self, pairs: LabeledPairSet) -> np.ndarray:
        return (self._propagated_scores(pairs) >= 0.5).astype(np.int64)

    def _propagated_scores(self, pairs: LabeledPairSet) -> np.ndarray:
        """One gated graph-convolution step over the candidate-pair graph.

        Competing pairs (same left or same right record) push each other
        down: a pair's propagated score is its own probability minus the
        strongest competing probability, gated by ``propagation``. Isolated
        pairs keep their local score.
        """
        assert self._head is not None
        scores = self._head.predict_proba(self.representation_matrix(pairs))

        by_left: dict[str, list[int]] = {}
        by_right: dict[str, list[int]] = {}
        for index, (pair, __) in enumerate(pairs):
            by_left.setdefault(pair.left.record_id, []).append(index)
            by_right.setdefault(pair.right.record_id, []).append(index)

        propagated = scores.copy()
        for groups in (by_left.values(), by_right.values()):
            for members in groups:
                if len(members) < 2:
                    continue
                member_scores = scores[list(members)]
                for position, index in enumerate(members):
                    others = np.delete(member_scores, position)
                    competition = float(others.max())
                    propagated[index] = (
                        (1.0 - self.propagation) * propagated[index]
                        + self.propagation * (scores[index] - competition)
                    )
        return np.clip(propagated, 0.0, 1.0)
