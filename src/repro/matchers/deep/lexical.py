"""Shared lexical-evidence features for the transformer-style matchers.

Mean-pooled sequence embeddings lose exact-token evidence that real
transformers keep: self-attention can align identical rare tokens (model
numbers, years, phone numbers) across the two sequences regardless of their
embedding neighbourhood. These four features restore that capability to the
sequence-pair representations: plain and IDF-weighted token overlap, 3-gram
overlap (subword attention proxy) and the overlap of digit-bearing tokens
(the identifier evidence DITTO injects explicitly and attention finds
implicitly).
"""

from __future__ import annotations

import numpy as np

from repro.data.pairs import RecordPair
from repro.data.records import Record
from repro.text.similarity import jaccard_similarity
from repro.text.tokenize import qgrams, tokenize
from repro.text.vectorize import TfIdfVectorizer

_DIGITS = set("0123456789")


def digit_tokens(record: Record) -> set[str]:
    """Tokens containing at least one digit (codes, years, prices)."""
    return {
        token
        for token in tokenize(record.full_text())
        if any(char in _DIGITS for char in token)
    }


class LexicalEvidence:
    """Per-pair lexical evidence vector, cached per record."""

    FEATURE_NAMES = ("token_jaccard", "idf_jaccard", "qg3_jaccard", "digit_overlap")

    def __init__(self, vectorizer: TfIdfVectorizer) -> None:
        self._vectorizer = vectorizer
        self._token_cache: dict[str, set[str]] = {}
        self._qgram_cache: dict[str, set[str]] = {}
        self._digit_cache: dict[str, set[str]] = {}

    def _tokens(self, record: Record) -> set[str]:
        cached = self._token_cache.get(record.record_id)
        if cached is None:
            cached = record.tokens()
            self._token_cache[record.record_id] = cached
        return cached

    def _qgrams(self, record: Record) -> set[str]:
        cached = self._qgram_cache.get(record.record_id)
        if cached is None:
            cached = qgrams(record.full_text(), 3)
            self._qgram_cache[record.record_id] = cached
        return cached

    def _digits(self, record: Record) -> set[str]:
        cached = self._digit_cache.get(record.record_id)
        if cached is None:
            cached = digit_tokens(record)
            self._digit_cache[record.record_id] = cached
        return cached

    def _idf_jaccard(self, left: set[str], right: set[str]) -> float:
        union = left | right
        if not union:
            return 0.0
        total = sum(self._vectorizer.idf(token) for token in union)
        if total == 0:
            return 0.0
        shared = sum(self._vectorizer.idf(token) for token in left & right)
        return shared / total

    def features(self, pair: RecordPair) -> np.ndarray:
        left_tokens = self._tokens(pair.left)
        right_tokens = self._tokens(pair.right)
        left_digits = self._digits(pair.left)
        right_digits = self._digits(pair.right)
        digit_union = len(left_digits | right_digits)
        return np.asarray(
            (
                jaccard_similarity(left_tokens, right_tokens),
                self._idf_jaccard(left_tokens, right_tokens),
                jaccard_similarity(self._qgrams(pair.left), self._qgrams(pair.right)),
                len(left_digits & right_digits) / digit_union if digit_union else 0.5,
            ),
            dtype=np.float64,
        )
