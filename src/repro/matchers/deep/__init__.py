"""Deep-learning matcher stand-ins, one per Table II taxonomy row.

Each matcher keeps its original's architectural signature:

* :class:`DeepMatcherNet` — static embeddings, homogeneous per-attribute
  similarity vectors, highway-MLP classifier (local).
* :class:`EMTransformerNet` — dynamic sequence-pair encoding of the
  concatenated record (heterogeneous, local); ``variant="B"``/``"R"``
  mirror the BERT / RoBERTa checkpoints.
* :class:`GnemNet` — the global method: candidate pairs that share a record
  form a graph and one gated propagation step mixes neighbouring match
  scores.
* :class:`DittoNet` — EMTransformer plus TF-IDF summarization of long
  sequences and training-set augmentation.
* :class:`HierMatcherNet` — hierarchical token -> attribute -> entity
  cross-attribute alignment on static embeddings.

All train a numpy MLP head with minibatch Adam; the validation set selects
the best epoch (the protocol Section V-B enforces).
"""

from repro.matchers.deep.base import DeepMatcherBase
from repro.matchers.deep.deepmatcher import DeepMatcherNet
from repro.matchers.deep.emtransformer import EMTransformerNet
from repro.matchers.deep.gnem import GnemNet
from repro.matchers.deep.ditto import DittoNet
from repro.matchers.deep.hiermatcher import HierMatcherNet

__all__ = [
    "DeepMatcherBase",
    "DeepMatcherNet",
    "DittoNet",
    "EMTransformerNet",
    "GnemNet",
    "HierMatcherNet",
]
