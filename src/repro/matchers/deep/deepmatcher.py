"""DeepMatcher stand-in: static + homogeneous + local (Table II row 1).

Mirrors the three-module design of Mudgal et al.: (1) attribute embedding —
static (fastText-equivalent) vectors; (2) attribute similarity — a per-
attribute similarity vector between the two records' attribute encodings
(homogeneous: attributes are compared positionally, so the schemata must be
aligned); (3) classification — the highway MLP head of the base class.
"""

from __future__ import annotations

import numpy as np

from repro.data.pairs import RecordPair
from repro.data.task import MatchingTask
from repro.embeddings.distances import (
    cosine_vector_similarity,
    euclidean_similarity,
)
from repro.embeddings.provider import static_embedder_for_task
from repro.embeddings.static import StaticEmbedder
from repro.matchers.deep.base import DeepMatcherBase
from repro.text.similarity import jaccard_similarity


class DeepMatcherNet(DeepMatcherBase):
    """Per-attribute static-embedding similarity vectors + highway head."""

    def __init__(self, epochs: int = 15, seed: int = 0) -> None:
        super().__init__(
            name=f"DeepMatcher ({epochs})", epochs=epochs, seed=seed
        )
        self._embedder: StaticEmbedder | None = None
        self._attributes: tuple[str, ...] = ()
        self._attribute_cache: dict[str, np.ndarray] = {}

    def _prepare(self, task: MatchingTask) -> None:
        self._embedder = static_embedder_for_task(task)
        self._attributes = task.attributes
        self._attribute_cache = {}

    def _attribute_vector(self, record, attribute: str) -> np.ndarray:
        assert self._embedder is not None
        key = f"{record.record_id}\x00{attribute}"
        cached = self._attribute_cache.get(key)
        if cached is None:
            cached = self._embedder.embed_attribute(record, attribute)
            self._attribute_cache[key] = cached
        return cached

    def _represent(self, pair: RecordPair) -> np.ndarray:
        """Per attribute: embedding cosine + Euclidean similarity, token
        Jaccard, and an exact-value indicator — the summarized similarity
        vector of the original's attribute-similarity module."""
        values: list[float] = []
        for attribute in self._attributes:
            left_vec = self._attribute_vector(pair.left, attribute)
            right_vec = self._attribute_vector(pair.right, attribute)
            left_value = pair.left.value(attribute)
            right_value = pair.right.value(attribute)
            values.append(cosine_vector_similarity(left_vec, right_vec))
            values.append(euclidean_similarity(left_vec, right_vec))
            values.append(
                jaccard_similarity(
                    pair.left.attribute_tokens(attribute),
                    pair.right.attribute_tokens(attribute),
                )
            )
            values.append(
                1.0 if left_value and left_value == right_value else 0.0
            )
        return np.asarray(values, dtype=np.float64)
