"""DITTO stand-in: dynamic + heterogeneous + local, plus its three tricks.

Li et al. extend the plain transformer application with (1) domain
knowledge injection, (2) TF-IDF summarization of sequences that exceed the
512-token window, and (3) data augmentation. Here:

* summarization — records longer than ``max_tokens`` are reduced to their
  highest-TF-IDF tokens before encoding (the same mechanism, scaled to the
  synthetic records);
* augmentation — each positive training pair spawns ``augment_copies``
  perturbed representation copies (feature dropout), the span-corruption
  style augmentation acting directly in representation space;
* knowledge injection — numeric literals are tagged by appending an
  exact-number-match feature, standing in for the NER/regex typing of ids.

Like the paper's configuration, the checkpoint is RoBerta-like ("R").
"""

from __future__ import annotations

import numpy as np

from repro.data.pairs import RecordPair
from repro.data.records import Record
from repro.data.task import MatchingTask
from repro.embeddings.contextual import ContextualEmbedder
from repro.embeddings.distances import cosine_vector_similarity
from repro.embeddings.provider import contextual_embedder_for_task
from repro.matchers.deep.base import DeepMatcherBase
from repro.matchers.deep.lexical import LexicalEvidence
from repro.text.tokenize import tokenize
from repro.text.vectorize import TfIdfVectorizer

_NUMBER_CHARS = set("0123456789")


def _numeric_tokens(record: Record) -> set[str]:
    return {
        token
        for token in tokenize(record.full_text())
        if any(char in _NUMBER_CHARS for char in token)
    }


class DittoNet(DeepMatcherBase):
    """EMTransformer-R plus summarization, augmentation and number typing."""

    def __init__(
        self,
        epochs: int = 15,
        max_tokens: int = 48,
        augment_copies: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__(name=f"DITTO ({epochs})", epochs=epochs, seed=seed + 11)
        if max_tokens < 1:
            raise ValueError(f"max_tokens must be >= 1, got {max_tokens}")
        if augment_copies < 0:
            raise ValueError(f"augment_copies must be >= 0, got {augment_copies}")
        self.max_tokens = max_tokens
        self.augment_copies = augment_copies
        self._embedder: ContextualEmbedder | None = None
        self._vectorizer: TfIdfVectorizer | None = None
        self._record_cache: dict[str, np.ndarray] = {}
        self._numeric_cache: dict[str, set[str]] = {}
        self._lexical: LexicalEvidence | None = None

    def _prepare(self, task: MatchingTask) -> None:
        self._embedder = contextual_embedder_for_task(task, variant="R")
        corpus = [
            tokenize(record.full_text())
            for record in list(task.left) + list(task.right)
        ]
        corpus = [tokens for tokens in corpus if tokens]
        self._vectorizer = TfIdfVectorizer().fit(corpus)
        self._lexical = LexicalEvidence(self._vectorizer)
        self._record_cache = {}
        self._numeric_cache = {}

    def _record_vector(self, record: Record) -> np.ndarray:
        assert self._embedder is not None and self._vectorizer is not None
        cached = self._record_cache.get(record.record_id)
        if cached is None:
            tokens = tokenize(record.full_text())
            summarized = self._vectorizer.summarize(tokens, self.max_tokens)
            cached = self._embedder.embed_sequence(summarized)
            self._record_cache[record.record_id] = cached
        return cached

    def _numbers(self, record: Record) -> set[str]:
        cached = self._numeric_cache.get(record.record_id)
        if cached is None:
            cached = _numeric_tokens(record)
            self._numeric_cache[record.record_id] = cached
        return cached

    def _represent(self, pair: RecordPair) -> np.ndarray:
        assert self._lexical is not None
        left = self._record_vector(pair.left)
        right = self._record_vector(pair.right)
        left_numbers = self._numbers(pair.left)
        right_numbers = self._numbers(pair.right)
        union = len(left_numbers | right_numbers)
        number_overlap = (
            len(left_numbers & right_numbers) / union if union else 0.5
        )
        return np.concatenate(
            (
                left * right,
                np.abs(left - right),
                [cosine_vector_similarity(left, right), number_overlap],
                self._lexical.features(pair),
            )
        )

    def _augment(
        self, features: np.ndarray, labels: np.ndarray, task: MatchingTask
    ) -> tuple[np.ndarray, np.ndarray]:
        """Feature-dropout copies of the positive training pairs."""
        if self.augment_copies == 0:
            return features, labels
        rng = np.random.default_rng(self.seed + 101)
        positive_rows = features[labels == 1]
        if positive_rows.shape[0] == 0:
            return features, labels
        augmented = [features]
        augmented_labels = [labels]
        for __ in range(self.augment_copies):
            mask = rng.random(positive_rows.shape) >= 0.1
            augmented.append(positive_rows * mask)
            augmented_labels.append(np.ones(positive_rows.shape[0], dtype=np.int64))
        return np.vstack(augmented), np.concatenate(augmented_labels)
