"""ZeroER: unsupervised matching via Gaussian-mixture EM.

Section IV-B: the same feature space as Magellan, no labels. A
two-component full-covariance Gaussian mixture is fitted to the feature
vectors of *all* candidate pairs (training labels are ignored — the
algorithm is unsupervised); the component with the higher mean similarity is
the match class. Like the paper we decouple ZeroER from its hand-crafted
per-dataset blocking, applying it to the same candidate sets as every other
matcher.
"""

from __future__ import annotations

import numpy as np

from repro.data.pairs import LabeledPairSet
from repro.data.task import MatchingTask
from repro.matchers.base import Matcher
from repro.matchers.features import MagellanFeatureExtractor
from repro.ml.gmm import GaussianMixture


class ZeroERMatcher(Matcher):
    """Unsupervised GMM-EM matcher on Magellan features."""

    def __init__(
        self,
        extractor: MagellanFeatureExtractor | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(name="ZeroER")
        self.seed = seed
        self._extractor = extractor
        self._mixture: GaussianMixture | None = None
        self._match_component = 1

    def _fit(self, task: MatchingTask) -> None:
        if self._extractor is None:
            self._extractor = MagellanFeatureExtractor(task.attributes)
        # Unsupervised: fit the mixture on every candidate pair's features,
        # labels unseen.
        all_pairs = task.all_pairs()
        features = self._extractor.feature_matrix(all_pairs)
        self._mixture = GaussianMixture(
            n_components=2, seed=self.seed, regularization=1e-5
        )
        self._mixture.fit(features)
        self._match_component = self._mixture.match_component()

    def _predict(self, pairs: LabeledPairSet) -> np.ndarray:
        assert self._extractor is not None and self._mixture is not None
        features = self._extractor.feature_matrix(pairs)
        responsibilities = self._mixture.predict_proba(features)
        return (
            responsibilities[:, self._match_component] >= 0.5
        ).astype(np.int64)
