"""The perfect oracle: predicts the ground-truth label of every pair.

Section I frames the learning-based margin as "the difference between the
best learning-based matcher and the perfect oracle"; this matcher makes the
oracle a first-class object (F1 = 1 by construction) so the margin can be
computed uniformly as a difference of matcher results.
"""

from __future__ import annotations

import numpy as np

from repro.data.pairs import LabeledPairSet
from repro.data.task import MatchingTask
from repro.matchers.base import Matcher


class OracleMatcher(Matcher):
    """Upper reference point for every benchmark."""

    def __init__(self) -> None:
        super().__init__(name="Oracle")

    def _fit(self, task: MatchingTask) -> None:
        # Nothing to learn: the oracle reads the labels at prediction time.
        pass

    def _predict(self, pairs: LabeledPairSet) -> np.ndarray:
        return np.asarray(pairs.labels, dtype=np.int64)
