"""Magellan: traditional ML classifiers over automatic similarity features.

Section IV-B / V-B: the blocking stage is disabled (all matchers see the
same candidate pairs) and four classifier heads are evaluated — decision
tree (DT), logistic regression (LR), random forest (RF) and linear SVM.
Training uses the task's training set; the validation set is unused, as in
the original system.
"""

from __future__ import annotations

import numpy as np

from repro.data.pairs import LabeledPairSet
from repro.data.task import MatchingTask
from repro.matchers.base import Matcher
from repro.matchers.features import MagellanFeatureExtractor
from repro.ml.forest import RandomForest
from repro.ml.logistic import LogisticRegression
from repro.ml.svm import LinearSVM
from repro.ml.tree import DecisionTree

#: Table IV head names.
MAGELLAN_HEADS: tuple[str, ...] = ("DT", "LR", "RF", "SVM")


def _make_head(head: str, seed: int):
    if head == "DT":
        return DecisionTree(max_depth=10, min_samples_leaf=2, seed=seed)
    if head == "LR":
        return LogisticRegression(epochs=400, learning_rate=0.5)
    if head == "RF":
        return RandomForest(n_trees=40, max_depth=10, seed=seed)
    if head == "SVM":
        return LinearSVM(regularization=1e-3, epochs=40, seed=seed)
    raise ValueError(f"unknown Magellan head {head!r}; known: {MAGELLAN_HEADS}")


class MagellanMatcher(Matcher):
    """Magellan with one of the four classifier heads.

    A shared :class:`MagellanFeatureExtractor` may be passed so the four
    heads (and ZeroER) reuse one per-pair feature cache.
    """

    def __init__(
        self,
        head: str = "RF",
        extractor: MagellanFeatureExtractor | None = None,
        seed: int = 0,
    ) -> None:
        if head not in MAGELLAN_HEADS:
            raise ValueError(
                f"unknown Magellan head {head!r}; known: {MAGELLAN_HEADS}"
            )
        super().__init__(name=f"Magellan-{head}")
        self.head = head
        self.seed = seed
        self._extractor = extractor
        self._model = None

    def _fit(self, task: MatchingTask) -> None:
        if self._extractor is None:
            self._extractor = MagellanFeatureExtractor(task.attributes)
        features = self._extractor.feature_matrix(task.training)
        self._model = _make_head(self.head, self.seed)
        self._model.fit(features, task.training.labels)

    def _predict(self, pairs: LabeledPairSet) -> np.ndarray:
        assert self._extractor is not None and self._model is not None
        features = self._extractor.feature_matrix(pairs)
        return self._model.predict(features)
