"""ESDE — Efficient Supervised Difficulty Estimation (Algorithm 2).

The paper's family of linear matchers: per feature, the training set yields
the F1-optimal threshold (lines 6-14); the validation set picks the single
best (feature, threshold) pair (lines 15-24); the testing set is classified
by thresholding that one feature (lines 25-30). Space and time are linear in
the data — these matchers exist to price the *baseline* performance any
learning-based matcher should beat.

Six variants (Section IV-C), differing only in the feature extractor:
SA / SB (tokens), SAQ / SBQ (character q-grams), SAS / SBS (sentence
embeddings), each schema-agnostic or per-attribute.
"""

from __future__ import annotations

import numpy as np

from repro.core.linearity import best_threshold_f1
from repro.data.pairs import LabeledPairSet
from repro.data.task import MatchingTask
from repro.matchers.base import Matcher
from repro.matchers.features import EsdeFeatureExtractor
from repro.ml.metrics import f1_score

#: The paper's variant names in Table IV order.
ESDE_VARIANTS: tuple[str, ...] = (
    "SA-ESDE",
    "SAQ-ESDE",
    "SAS-ESDE",
    "SB-ESDE",
    "SBQ-ESDE",
    "SBS-ESDE",
)


class EsdeMatcher(Matcher):
    """One ESDE variant; see the module docstring for the algorithm."""

    non_linear = False

    def __init__(self, variant: str) -> None:
        if variant not in EsdeFeatureExtractor.VARIANTS:
            raise ValueError(
                f"unknown ESDE variant {variant!r}; "
                f"known: {EsdeFeatureExtractor.VARIANTS}"
            )
        super().__init__(name=f"{variant}-ESDE")
        self.variant = variant
        self._extractor: EsdeFeatureExtractor | None = None
        self.best_feature_: int | None = None
        self.best_threshold_: float = 0.0
        self.validation_f1_: float = 0.0
        self.training_thresholds_: np.ndarray | None = None
        self.training_f1_: np.ndarray | None = None

    def _fit(self, task: MatchingTask) -> None:
        self._extractor = EsdeFeatureExtractor(self.variant, task)
        training_features = self._extractor.feature_matrix(task.training)
        training_labels = task.training.labels

        # Training phase: the F1-optimal threshold per feature.
        n_features = training_features.shape[1]
        thresholds = np.empty(n_features)
        training_f1 = np.empty(n_features)
        for feature in range(n_features):
            best_f1, threshold = best_threshold_f1(
                training_features[:, feature], training_labels
            )
            thresholds[feature] = threshold
            training_f1[feature] = best_f1
        self.training_thresholds_ = thresholds
        self.training_f1_ = training_f1

        # Validation phase: the single best (feature, threshold).
        validation_features = self._extractor.feature_matrix(task.validation)
        validation_labels = task.validation.labels
        best_feature = 0
        best_f1 = -1.0
        for feature in range(n_features):
            predictions = (
                validation_features[:, feature] >= thresholds[feature]
            ).astype(np.int64)
            f1 = f1_score(validation_labels, predictions)
            if f1 > best_f1:
                best_f1 = f1
                best_feature = feature
        self.best_feature_ = best_feature
        self.best_threshold_ = float(thresholds[best_feature])
        self.validation_f1_ = best_f1

    def _predict(self, pairs: LabeledPairSet) -> np.ndarray:
        assert self._extractor is not None and self.best_feature_ is not None
        # Single-column fast path: only the selected feature is computed,
        # not the variant's full vector per pair (for SBQ that would be
        # |attributes| x 9 q-values x 3 similarities of wasted work).
        scores = self._extractor.feature_column(pairs, self.best_feature_)
        return (scores >= self.best_threshold_).astype(np.int64)

    @property
    def best_feature_name(self) -> str | None:
        """Human-readable name of the selected feature (after fitting)."""
        if self._extractor is None or self.best_feature_ is None:
            return None
        return self._extractor.feature_names[self.best_feature_]

    # -- session snapshots (repro.serve) ------------------------------------

    def to_payload(self) -> dict:
        """JSON-ready fitted state for ``repro.serve`` session snapshots.

        Only the decision state — the selected (feature, threshold) pair
        — needs to persist; the extractor is rebuilt at load time from
        the session's records. Floats round-trip through JSON exactly
        (``repr``-based), so a restored matcher predicts bit-identically.
        Embedding variants hold a task-local embedder that is not
        serializable; they raise.
        """
        if not self._fitted or self.best_feature_ is None:
            raise RuntimeError(
                f"{self.name}: cannot snapshot an unfitted matcher"
            )
        if self.variant in ("SAS", "SBS"):
            raise ValueError(
                f"{self.name}: embedding variants do not support "
                "session snapshots"
            )
        return {
            "kind": "esde",
            "variant": self.variant,
            "best_feature": int(self.best_feature_),
            "best_threshold": float(self.best_threshold_),
            "validation_f1": float(self.validation_f1_),
        }

    @classmethod
    def from_payload(cls, payload: dict, task) -> "EsdeMatcher":
        """Rebuild a fitted matcher from :meth:`to_payload` output.

        *task* only needs ``attributes`` and weak referenceability (the
        extractor resolves its feature store through it) — the serve
        loader passes a lightweight task shim, not a full
        :class:`~repro.data.task.MatchingTask`.
        """
        matcher = cls(payload["variant"])
        matcher._extractor = EsdeFeatureExtractor(matcher.variant, task)
        matcher.best_feature_ = int(payload["best_feature"])
        matcher.best_threshold_ = float(payload["best_threshold"])
        matcher.validation_f1_ = float(payload.get("validation_f1", 0.0))
        matcher._fitted = True
        return matcher


def make_esde(variant: str) -> EsdeMatcher:
    """Construct an ESDE matcher from a Table IV row name or a bare variant.

    Accepts ``"SA"`` or ``"SA-ESDE"`` style names.
    """
    bare = variant.removesuffix("-ESDE")
    return EsdeMatcher(bare)
