"""The matcher API shared by every matching algorithm."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.data.pairs import LabeledPairSet
from repro.data.task import MatchingTask
from repro.ml.metrics import precision_recall_f1


@dataclass(frozen=True)
class MatcherResult:
    """Evaluation of one matcher on one task's testing set.

    ``degraded`` marks a placeholder produced because the matcher failed
    (scores forced to zero); tables render such cells explicitly instead
    of passing the zeros off as measurements.
    """

    matcher: str
    task: str
    precision: float
    recall: float
    f1: float
    fit_seconds: float
    predict_seconds: float
    degraded: bool = False

    @property
    def f1_percent(self) -> float:
        """F1 on the 0-100 scale the paper's tables use."""
        return 100.0 * self.f1


class Matcher(abc.ABC):
    """A supervised (or unsupervised) matching algorithm.

    Subclasses implement ``_fit`` and ``_predict``; this base class provides
    evaluation, timing, and the fitted-state guard. ``name`` identifies the
    matcher in tables (e.g. ``"DeepMatcher (15)"``).
    """

    #: Linear matchers set this False; the NLB measure needs the split.
    non_linear: bool = True

    def __init__(self, name: str) -> None:
        self.name = name
        self._fitted = False

    def fit(self, task: MatchingTask) -> "Matcher":
        """Train on the task's training (and validation) sets."""
        self._fit(task)
        self._fitted = True
        return self

    def predict(self, pairs: LabeledPairSet) -> np.ndarray:
        """0/1 predictions for each pair, aligned with the set's order."""
        if not self._fitted:
            raise RuntimeError(f"{self.name} is not fitted; call fit() first")
        predictions = self._predict(pairs)
        predictions = np.asarray(predictions, dtype=np.int64)
        if predictions.shape != (len(pairs),):
            raise RuntimeError(
                f"{self.name} returned {predictions.shape} predictions "
                f"for {len(pairs)} pairs"
            )
        return predictions

    def evaluate(self, task: MatchingTask) -> MatcherResult:
        """Fit on the task and score on its testing set."""
        start = time.perf_counter()
        self.fit(task)
        fit_seconds = time.perf_counter() - start

        start = time.perf_counter()
        predictions = self.predict(task.testing)
        predict_seconds = time.perf_counter() - start

        obs.inc("matcher.evaluations")
        obs.observe("matcher.fit_seconds", fit_seconds)
        obs.observe("matcher.predict_seconds", predict_seconds)
        obs.phase(self.name, "fit", fit_seconds)
        obs.phase(self.name, "predict", predict_seconds)

        precision, recall, f1 = precision_recall_f1(
            task.testing.labels, predictions
        )
        return MatcherResult(
            matcher=self.name,
            task=task.name,
            precision=precision,
            recall=recall,
            f1=f1,
            fit_seconds=fit_seconds,
            predict_seconds=predict_seconds,
        )

    @abc.abstractmethod
    def _fit(self, task: MatchingTask) -> None:
        """Subclass hook: train the model."""

    @abc.abstractmethod
    def _predict(self, pairs: LabeledPairSet) -> np.ndarray:
        """Subclass hook: label the pairs."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
