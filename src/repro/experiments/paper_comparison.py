"""Quantitative paper-vs-measured comparison.

Builds, from a fitted :class:`ExperimentRunner` and the transcribed paper
numbers, the evidence EXPERIMENTS.md records: per-dataset best-F1 per
family (paper vs measured), the practical measures, the four-gate verdicts,
and agreement statistics for the paper's headline claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.registry import (
    ESTABLISHED_DATASET_IDS,
    NEW_BENCHMARK_LABELS,
    SOURCE_DATASET_IDS,
)
from repro.experiments.matcher_suite import family_of
from repro.experiments.paper_reference import (
    ESTABLISHED_ORDER,
    NEW_ORDER,
    PAPER_CHALLENGING_ESTABLISHED,
    PAPER_CHALLENGING_NEW,
    PAPER_TABLE4,
    PAPER_TABLE6,
    paper_best_f1,
)
from repro.experiments.runner import ExperimentRunner


@dataclass(frozen=True)
class DatasetComparison:
    """Paper-vs-measured summary for one dataset."""

    dataset: str
    paper_best_dl: float
    paper_best_ml: float
    paper_best_linear: float
    measured_best_dl: float
    measured_best_ml: float
    measured_best_linear: float
    paper_challenging: bool
    measured_challenging: bool

    @property
    def paper_nlb(self) -> float:
        return max(self.paper_best_dl, self.paper_best_ml) - self.paper_best_linear

    @property
    def measured_nlb(self) -> float:
        return (
            max(self.measured_best_dl, self.measured_best_ml)
            - self.measured_best_linear
        )

    @property
    def nlb_sign_agrees(self) -> bool:
        """Both runs agree on whether non-linear matchers meaningfully win.

        Sign agreement uses the paper's 5% bar rather than the raw sign, so
        tiny boosts on solved datasets don't count as disagreements.
        """
        return (self.paper_nlb > 5.0) == (self.measured_nlb > 5.0)

    @property
    def verdict_agrees(self) -> bool:
        return self.paper_challenging == self.measured_challenging


def _measured_best(runner: ExperimentRunner, dataset_id: str, family: str) -> float:
    results = runner.matcher_results(dataset_id)
    values = [
        result.f1_percent
        for name, result in results.items()
        if family_of(name) == family
    ]
    return max(values)


def compare_dataset(
    runner: ExperimentRunner, dataset_id: str
) -> DatasetComparison:
    """Compare one dataset (established id or source id) with the paper."""
    if dataset_id in ESTABLISHED_DATASET_IDS:
        label = dataset_id
        table, order = PAPER_TABLE4, ESTABLISHED_ORDER
        paper_challenging = label in PAPER_CHALLENGING_ESTABLISHED
    elif dataset_id in SOURCE_DATASET_IDS:
        label = NEW_BENCHMARK_LABELS[dataset_id]
        table, order = PAPER_TABLE6, NEW_ORDER
        paper_challenging = label in PAPER_CHALLENGING_NEW
    else:
        raise KeyError(f"unknown dataset id {dataset_id!r}")

    assessment = runner.assessment(dataset_id, with_practical=True)
    return DatasetComparison(
        dataset=label,
        paper_best_dl=paper_best_f1(
            table, order, label, lambda name: family_of(name) == "dl"
        ),
        paper_best_ml=paper_best_f1(
            table, order, label, lambda name: family_of(name) == "ml"
        ),
        paper_best_linear=paper_best_f1(
            table, order, label, lambda name: family_of(name) == "linear"
        ),
        measured_best_dl=_measured_best(runner, dataset_id, "dl"),
        measured_best_ml=_measured_best(runner, dataset_id, "ml"),
        measured_best_linear=_measured_best(runner, dataset_id, "linear"),
        paper_challenging=paper_challenging,
        measured_challenging=assessment.is_challenging,
    )


def compare_all(
    runner: ExperimentRunner,
) -> tuple[list[DatasetComparison], list[DatasetComparison]]:
    """(established comparisons, new-benchmark comparisons)."""
    established = [
        compare_dataset(runner, dataset_id)
        for dataset_id in ESTABLISHED_DATASET_IDS
    ]
    new = [
        compare_dataset(runner, source_id) for source_id in SOURCE_DATASET_IDS
    ]
    return established, new


def render_comparison_markdown(
    established: list[DatasetComparison], new: list[DatasetComparison]
) -> str:
    """The EXPERIMENTS.md comparison tables, as markdown."""

    def block(title: str, comparisons: list[DatasetComparison]) -> list[str]:
        lines = [
            f"### {title}",
            "",
            "| dataset | paper best DL/ML/linear | measured best DL/ML/linear |"
            " paper NLB | measured NLB | NLB>5% agrees | verdict (paper / measured) |",
            "|---|---|---|---|---|---|---|",
        ]
        for c in comparisons:
            verdict = (
                f"{'challenging' if c.paper_challenging else 'easy'} / "
                f"{'challenging' if c.measured_challenging else 'easy'}"
                + (" ✓" if c.verdict_agrees else " ✗")
            )
            lines.append(
                f"| {c.dataset} "
                f"| {c.paper_best_dl:.1f} / {c.paper_best_ml:.1f} / {c.paper_best_linear:.1f} "
                f"| {c.measured_best_dl:.1f} / {c.measured_best_ml:.1f} / {c.measured_best_linear:.1f} "
                f"| {c.paper_nlb:+.1f} | {c.measured_nlb:+.1f} "
                f"| {'yes' if c.nlb_sign_agrees else 'no'} "
                f"| {verdict} |"
            )
        agreement = sum(c.verdict_agrees for c in comparisons)
        lines.append("")
        lines.append(
            f"Verdict agreement: **{agreement}/{len(comparisons)}** datasets."
        )
        lines.append("")
        return lines

    lines: list[str] = []
    lines.extend(block("Established benchmarks (Table IV / Figure 3)", established))
    lines.extend(block("New benchmarks (Table VI / Figure 6)", new))
    return "\n".join(lines)
