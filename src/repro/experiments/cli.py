"""Command-line interface: regenerate any experiment from a shell.

Usage (after ``pip install -e .``)::

    python -m repro table3                # print Table III
    python -m repro table4 --scale 0.5    # half-scale matcher sweep
    python -m repro fig1                  # Figure 1 series
    python -m repro audit Ds4             # four-measure audit of one dataset
    python -m repro snapshot --out s.json # every table+figure as one JSON
    python -m repro scale-up --records 100000 --shard-size 10000
                                          # streaming sharded scale sweep
    python -m repro doctor --check        # audit cache/journal state
    python -m repro chaos --plans 5       # seeded chaos campaign
    python -m repro list                  # list datasets and experiments

Heavy sweeps honour ``--cache DIR`` (default ``.benchcache``), sharing the
cache with the pytest-benchmark harness. Long runs are fault tolerant:
``--retries``/``--timeout`` configure the execution policy, interrupted
runs resume from the cache directory's checkpoint journal, and
``--inject SITE=KIND[:TIMES]`` arms deterministic faults (see
:mod:`repro.runtime.faults`) to rehearse the degradation paths. Any unit
that failed is listed after the output instead of aborting the run.

``--workers N`` fans the per-dataset sweeps (and single-dataset matcher
rosters) across N ``fork`` worker processes via
:mod:`repro.runtime.parallel`; results are identical to the sequential
run and a per-worker timing table is printed after the output.

Self-healing state: ``repro doctor`` audits and repairs a cache
directory (torn journal tails, corrupt envelopes, quarantine retention,
stale temp files; ``--check`` reports without repairing and exits 1 on
findings). ``repro chaos`` runs a seeded campaign of randomized fault
plans against real sweeps and asserts the surviving verdicts equal a
fault-free baseline (see :mod:`repro.runtime.chaos`).
``--breaker-threshold K`` arms circuit breakers: a unit failing K
consecutive times short-circuits instead of burning retries.

Observability (:mod:`repro.obs`): every run traces its sweeps, matcher
evaluations and assessments into ``<cache>/trace.jsonl`` —
``python -m repro trace --last`` renders the most recent run as a tree.
``--metrics`` appends the run's counters/gauges/timers after the output
(never altering the output itself) and ``--profile`` samples the hottest
units while the run executes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import obs
from repro.datasets.registry import ESTABLISHED_DATASET_IDS, SOURCE_DATASET_IDS
from repro.experiments import figures, tables
from repro.experiments.report import render
from repro.experiments.runner import (
    ExperimentRunner,
    RunnerConfig,
    check_cache_dir_writable,
)
from repro.obs import read_trace
from repro.runtime import ExecutionPolicy, clear_recorded_failures, faults

_TABLES = {
    "table3": (tables.table3, "Table III — established benchmarks"),
    "table4": (tables.table4, "Table IV — F1 per matcher and dataset"),
    "table5": (tables.table5, "Table V — new benchmarks (DeepBlocker)"),
    "table6": (tables.table6, "Table VI — F1 per matcher (new benchmarks)"),
    "table7": (tables.table7, "Table VII — existing vs new benchmarks"),
}

_FIGURES = {
    "fig1": (figures.figure1, "Figure 1 — degree of linearity (established)"),
    "fig2": (figures.figure2, "Figure 2 — complexity measures (established)"),
    "fig3": (figures.figure3, "Figure 3 — NLB and LBM (established)"),
    "fig4": (figures.figure4, "Figure 4 — degree of linearity (new)"),
    "fig5": (figures.figure5, "Figure 5 — complexity measures (new)"),
    "fig6": (figures.figure6, "Figure 6 — NLB and LBM (new)"),
}


def _positive_float(text: str) -> float:
    """Argparse type for ``--scale``: actionable message, no traceback."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {text!r} (try --scale 0.5)"
        ) from None
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"size factor must be > 0, got {value} (1.0 = CI scale)"
        )
    return value


def _integer(text: str) -> int:
    """Argparse type for ``--seed``: actionable message, no traceback."""
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer seed, got {text!r} (e.g. --seed 7)"
        ) from None


def _positive_int(text: str) -> int:
    value = _integer(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected an integer >= 1, got {value}")
    return value


def _cache_dir(text: str) -> Path | None:
    """Argparse type for ``--cache``: the advertised '' really disables.

    ``Path("")`` normalises to ``Path(".")``, so a plain ``type=Path``
    would silently cache into the working directory instead.
    """
    return Path(text) if text else None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables, figures and audits.",
    )
    parser.add_argument(
        "experiment",
        help="table3..table7, fig1..fig6, blocking, audit, snapshot, serve, "
        "scale-up, trace, doctor, chaos, or list",
    )
    parser.add_argument(
        "dataset",
        nargs="?",
        default=None,
        help="dataset id for 'audit' (e.g. Ds4 or abt_buy) or the profile "
        "'scale-up' scales (default Ds2)",
    )
    parser.add_argument(
        "--scale",
        type=_positive_float,
        default=1.0,
        help="dataset size factor (1.0 = CI scale)",
    )
    parser.add_argument(
        "--cache",
        type=_cache_dir,
        default=Path(".benchcache"),
        help="matcher-sweep cache directory ('' to disable)",
    )
    parser.add_argument(
        "--seed", type=_integer, default=0, help="global experiment seed"
    )
    parser.add_argument(
        "--retries",
        type=_positive_int,
        default=1,
        metavar="N",
        help="attempts per unit of work (retry with backoff after failures)",
    )
    parser.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-unit wall-clock deadline (default: none)",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="fan sweeps across N worker processes (default 1: sequential, "
        "results are identical either way)",
    )
    parser.add_argument(
        "--inject",
        action="append",
        default=[],
        metavar="SITE=KIND[:TIMES]",
        help="arm a deterministic fault, e.g. 'matcher:DITTO (15)=error' "
        "or 'cache:read=corrupt' (repeatable; KIND: error|hang|corrupt)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path for 'snapshot' (default snapshot.json) or for "
        "the 'scale-up' report JSON (default: state dir only)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's metrics (counters/gauges/timers) after the "
        "output; never changes the output itself",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="sample the active spans while the run executes and print the "
        "hottest units afterwards (opt-in; adds sampling overhead)",
    )
    parser.add_argument(
        "--last",
        action="store_true",
        help="for 'trace': show only the most recent run in the trace file",
    )
    parser.add_argument(
        "--datasets",
        default=None,
        metavar="IDS",
        help="comma-separated dataset ids restricting table4/verdicts/chaos "
        "(e.g. --datasets Ds5,Ds7)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=_positive_int,
        default=None,
        metavar="K",
        help="open a unit's circuit breaker after K consecutive failures "
        "(default: breakers disabled)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="for 'doctor': audit only, repair nothing, exit 1 on findings",
    )
    parser.add_argument(
        "--retention-days",
        type=_positive_float,
        default=None,
        metavar="DAYS",
        help="for 'doctor': delete quarantined entries older than this "
        "(default 7)",
    )
    parser.add_argument(
        "--plans",
        type=_positive_int,
        default=20,
        metavar="N",
        help="for 'chaos': number of seeded fault plans (default 20)",
    )
    parser.add_argument(
        "--memory-budget",
        type=_positive_float,
        default=None,
        metavar="MIB",
        help="degrade gracefully (smaller kernel batches, merge backend, "
        "feature cache off) when RSS passes this budget, then shed units "
        "as BudgetExceeded; with --workers also caps each worker's RSS",
    )
    parser.add_argument(
        "--disk-reserve",
        type=_positive_float,
        default=None,
        metavar="MIB",
        help="keep at least this much free space on the cache volume: "
        "preflight + periodic checks degrade and shed before ENOSPC",
    )
    parser.add_argument(
        "--adaptive-deadlines",
        action="store_true",
        help="learn per-phase deadlines from healthy durations "
        "(p99 x margin) instead of the fixed --timeout",
    )
    parser.add_argument(
        "--hang-deadline",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="fallback worker deadline until the adaptive model has "
        "samples; arms the heartbeat watchdog on pooled runs",
    )
    parser.add_argument(
        "--blocker",
        choices=("all", "exhaustive", "lsh", "graph", "ann"),
        default="all",
        metavar="BACKEND",
        help="for 'blocking': restrict the provenance sweep's rows to one "
        "backend ('ann' = both ANN backends; default: all)",
    )
    parser.add_argument(
        "--matcher",
        default="SA-ESDE",
        metavar="NAME",
        help="for 'serve': roster name of the matcher to fit (default "
        "SA-ESDE)",
    )
    parser.add_argument(
        "--k",
        type=_positive_int,
        default=10,
        metavar="K",
        help="for 'serve': candidates retrieved per query (default 10)",
    )
    parser.add_argument(
        "--state",
        type=_cache_dir,
        default=None,
        metavar="DIR",
        help="for 'serve': state directory (lease + journal + session "
        "snapshot); restarting with an existing snapshot resumes it. "
        "For 'scale-up': shard journal + manifest directory (default "
        "<cache>/scale); a rerun resumes at the last shard boundary",
    )
    parser.add_argument(
        "--snapshot-every",
        type=_positive_int,
        default=None,
        metavar="N",
        help="for 'serve': snapshot the session after every N added "
        "records (requires --state)",
    )
    parser.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="for 'serve': serve concurrent clients over TCP instead of "
        "stdio (port 0 picks an ephemeral port, announced in the ready "
        "event)",
    )
    parser.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="for 'serve': serve concurrent clients over a unix domain "
        "socket instead of stdio",
    )
    parser.add_argument(
        "--max-queue",
        type=_positive_int,
        default=None,
        metavar="N",
        help="for 'serve' with --listen/--socket: admission queue depth; "
        "beyond it requests are shed with an 'overloaded' response",
    )
    parser.add_argument(
        "--max-inflight-kb",
        type=_positive_int,
        default=None,
        metavar="KIB",
        help="for 'serve' with --listen/--socket: cap on admitted-but-"
        "unfinished request bytes (the other shedding axis)",
    )
    parser.add_argument(
        "--request-deadline",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="for 'serve' with --listen/--socket: fallback per-request "
        "deadline until the adaptive model has samples (default 30)",
    )
    parser.add_argument(
        "--send-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="for 'serve' with --listen/--socket: slow-client write "
        "bound; a blocked send past it drops that client (default 5)",
    )
    parser.add_argument(
        "--records",
        type=_positive_int,
        default=None,
        metavar="N",
        help="for 'scale-up': target total record count across both "
        "sources (default 100000)",
    )
    parser.add_argument(
        "--shard-size",
        type=_positive_int,
        default=None,
        metavar="S",
        help="for 'scale-up': entities per shard — the streaming memory "
        "ceiling; results are bit-identical for every choice "
        "(default 10000)",
    )
    parser.add_argument(
        "--no-auto-degrade",
        action="store_true",
        help="keep --workers N even on single-core machines (default: "
        "degrade to the sequential loop when forking cannot win)",
    )
    return parser


def _parse_datasets(text: str | None) -> tuple[str, ...] | None:
    """Validate a ``--datasets`` list against the known dataset ids."""
    if text is None:
        return None
    ids = tuple(part.strip() for part in text.split(",") if part.strip())
    if not ids:
        raise ValueError("expected at least one dataset id")
    known = set(ESTABLISHED_DATASET_IDS) | set(SOURCE_DATASET_IDS)
    unknown = [dataset_id for dataset_id in ids if dataset_id not in known]
    if unknown:
        raise ValueError(
            f"unknown dataset id(s) {', '.join(unknown)} (see 'repro list')"
        )
    return ids


def _audit(runner: ExperimentRunner, dataset_id: str) -> str:
    assessment = runner.assessment(dataset_id, with_practical=True)
    practical = assessment.practical
    assert practical is not None
    lines = [
        f"=== {dataset_id} ===",
        f"linearity (cosine):  {assessment.linearity['cosine'].max_f1:.3f}",
        f"linearity (jaccard): {assessment.linearity['jaccard'].max_f1:.3f}",
        f"mean complexity:     {assessment.complexity.mean:.3f}",
        f"non-linear boost:    {100 * practical.non_linear_boost:.1f}%",
        f"learning margin:     {100 * practical.learning_based_margin:.1f}%",
        f"easy by linearity:   {assessment.easy_by_linearity}",
        f"easy by complexity:  {assessment.easy_by_complexity}",
        f"easy by practical:   {assessment.easy_by_practical}",
        f"CHALLENGING:         {assessment.is_challenging}",
    ]
    return "\n".join(lines)


def _print_failures(runner: ExperimentRunner) -> None:
    report = render(runner.failure_records())
    if report:
        print()
        print(report)
    if runner.workers > 1:
        timing = render(runner.worker_reports())
        if timing:
            print()
            print(timing)


def _print_observability(runner: ExperimentRunner, args) -> None:
    """The opt-in ``--metrics`` / ``--profile`` epilogue, after the output."""
    if args.metrics:
        print()
        print(render(runner.obs.snapshot(), title="Metrics"))
    if args.profile:
        runner.obs.profiler.stop()
        rows = [
            [label, str(samples), f"{seconds:.2f}s"]
            for label, samples, seconds in runner.obs.profiler.summary(10)
        ]
        print()
        if rows:
            print(render((["unit", "samples", "~seconds"], rows),
                         title="Hottest units (sampled)"))
        else:
            print("Hottest units (sampled): no samples collected")


def _trace_command(cache_dir: Path | None, last: bool) -> int:
    """``python -m repro trace [--last]``: render the trace file as trees."""
    if cache_dir is None:
        print("trace requires a cache directory (--cache DIR)")
        return 2
    trace_path = cache_dir / obs.TRACE_FILE_NAME
    runs = read_trace(trace_path)
    if not runs:
        print(f"no trace runs found in {trace_path}")
        return 1
    run_ids = list(runs)
    if last:
        run_ids = run_ids[-1:]
    for index, run_id in enumerate(run_ids):
        if index:
            print()
        spans = runs[run_id]
        print(render(spans, title=f"Trace {run_id} ({len(spans)} span(s))"))
    return 0


def _doctor_command(cache_dir: Path | None, args) -> int:
    """``python -m repro doctor [--check] [--retention-days D]``."""
    from repro.runtime.doctor import DEFAULT_RETENTION_DAYS, run_doctor

    if cache_dir is None:
        print("doctor requires a cache directory (--cache DIR)")
        return 2
    report = run_doctor(
        cache_dir,
        check=args.check,
        retention_days=(
            args.retention_days
            if args.retention_days is not None
            else DEFAULT_RETENTION_DAYS
        ),
    )
    if report.findings:
        print(render(report.to_table(), title="Doctor findings"))
        print()
    print(report.summary())
    # --check is an audit: findings mean the state needs repair.
    return 1 if (args.check and not report.clean) else 0


def _chaos_command(
    dataset_ids: tuple[str, ...] | None, cache_dir: Path | None, args
) -> int:
    """``python -m repro chaos [--plans N] [--datasets IDS] ...``."""
    from repro.runtime.chaos import DEFAULT_DATASETS, ChaosCampaign

    options = {}
    if args.breaker_threshold is not None:
        options["breaker_threshold"] = args.breaker_threshold
    if cache_dir is not None:
        # An explicit --cache pins the campaign's scratch space and keeps
        # it around afterwards — ``repro doctor`` can then audit what the
        # faults left behind (scripts/verify.sh does exactly this).
        options["workdir"] = cache_dir
    campaign = ChaosCampaign(
        datasets=dataset_ids if dataset_ids is not None else DEFAULT_DATASETS,
        scale=args.scale,
        seed=args.seed,
        n_plans=args.plans,
        # Kill-resume plans spawn three child runs each; only include
        # them once the campaign is big enough to amortize that.
        n_kill_plans=2 if args.plans >= 5 else 0,
        retries=max(args.retries, 2),
        **options,
    )
    report = campaign.run()
    print(render(report.to_table(),
                 title=f"Chaos campaign (seed {report.seed}, "
                       f"{len(report.results)} plan(s))"))
    if report.ok:
        print()
        print("all surviving verdicts match the fault-free baseline")
        return 0
    print()
    for result in report.divergent:
        print(f"DIVERGED: {result.plan.describe()}")
        for text in result.divergences:
            print(f"  - {text}")
    return 1


def _scale_command(cache_dir: Path | None, args) -> int:
    """``python -m repro scale-up [DATASET] --records N --shard-size S``.

    Scales the named established profile (default Ds2) to ``--records``
    total records and streams it shard-by-shard through blocking,
    matching and reduction (:mod:`repro.scale`). State (shard journal +
    manifest) lives in ``--state`` or ``<cache>/scale``; a rerun — or a
    restart after a mid-shard SIGKILL — resumes at the last completed
    shard boundary and produces bit-identical final tables.
    """
    from repro.runtime.guard import BudgetExceeded
    from repro.scale import ScaleConfig, ShardedSweep

    options = {}
    if args.records is not None:
        options["records"] = args.records
    if args.shard_size is not None:
        options["shard_size"] = args.shard_size
    if args.dataset is not None:
        options["dataset_id"] = args.dataset
    # The sweep's blocker vocabulary is wider than the blocking
    # experiment's restriction flag; the sweep defaults ('all') and the
    # 'ann' shorthand both mean the LSH backend here.
    if args.blocker not in ("all", "ann"):
        options["blocker"] = args.blocker
    try:
        config = ScaleConfig(
            matcher=args.matcher,
            seed=args.seed,
            memory_budget_mb=args.memory_budget,
            disk_reserve_mb=args.disk_reserve,
            **options,
        )
    except ValueError as error:
        print(f"scale-up: {error}")
        return 2
    state_dir = args.state
    if state_dir is None and cache_dir is not None:
        state_dir = cache_dir / "scale"
    sweep = ShardedSweep(config, cache_dir=state_dir)
    try:
        report = sweep.run()
    except BudgetExceeded as error:
        print(f"scale-up: budget exceeded: {error}")
        print("completed shards are journaled; rerun to resume")
        return 3
    title = (
        f"Scale sweep — {config.dataset_id} @ {config.records:,} records, "
        f"{report.n_shards} shard(s), blocker={config.blocker}, "
        f"matcher={config.matcher_variant}"
    )
    print(render(report.to_table(), title=title))
    print()
    resumed = (
        f", {report.resumed_shards} shard(s) resumed from the journal"
        if report.resumed_shards
        else ""
    )
    print(
        f"{report.n_records:,} records in {report.total_seconds:.1f}s "
        f"({report.records_per_sec:,.0f} records/sec{resumed})"
    )
    if args.out is not None:
        args.out.write_text(
            json.dumps(report.state(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")
    if args.metrics:
        print()
        print(render(obs.snapshot(), title="Metrics"))
    return 0


def _serve_command(args) -> int:
    """``python -m repro serve [DATASET] [--matcher M] [--state DIR] ...``.

    Fits the matcher, builds the incremental ANN index over the dataset's
    right-hand records and answers JSONL requests on stdin until EOF,
    ``shutdown`` or SIGTERM. With ``--state DIR`` holding an existing
    session snapshot, the session resumes from it instead of refitting.
    ``--listen HOST:PORT`` / ``--socket PATH`` swap stdio for the
    concurrent socket front end (admission control, deadlines, per-client
    breakers); stdio stays the default.
    """
    from repro.datasets.generator import build_task_from_sources
    from repro.datasets.registry import load_established_task, load_source_pair
    from repro.serve import MatcherSession, SessionConfig
    from repro.serve.frontend import FrontendConfig, SocketFrontend
    from repro.serve.loop import SNAPSHOT_NAME, ServeLoop

    if args.snapshot_every is not None and args.state is None:
        print("--snapshot-every requires --state DIR")
        return 2
    if args.listen is not None and args.socket is not None:
        print("--listen and --socket are mutually exclusive")
        return 2

    snapshot_path = (
        args.state / SNAPSHOT_NAME if args.state is not None else None
    )
    if snapshot_path is not None and snapshot_path.exists():
        session = MatcherSession.load(snapshot_path)
    else:
        dataset_id = args.dataset if args.dataset is not None else "dblp_scholar"
        if dataset_id in ESTABLISHED_DATASET_IDS:
            task = load_established_task(dataset_id, args.scale)
        elif dataset_id in SOURCE_DATASET_IDS:
            task = build_task_from_sources(
                load_source_pair(dataset_id, args.scale),
                n_pairs=300,
                positive_fraction=0.25,
                seed=args.seed,
            )
        else:
            print(
                f"serve: unknown dataset id {dataset_id!r} (see 'repro list')"
            )
            return 2
        blocker = args.blocker if args.blocker in ("lsh", "graph") else "graph"
        config = SessionConfig(
            matcher=args.matcher,
            blocker=blocker,
            k=args.k,
            seed=args.seed,
        )
        session = MatcherSession(task, config)

    loop = ServeLoop(
        session,
        state_dir=args.state,
        snapshot_every=(
            args.snapshot_every if args.snapshot_every is not None else 0
        ),
    )
    if args.listen is not None or args.socket is not None:
        overrides: dict = {}
        if args.max_queue is not None:
            overrides["max_queue_depth"] = args.max_queue
        if args.max_inflight_kb is not None:
            overrides["max_inflight_bytes"] = args.max_inflight_kb * 1024
        if args.request_deadline is not None:
            overrides["fallback_deadline_seconds"] = args.request_deadline
        if args.send_timeout is not None:
            overrides["send_timeout_seconds"] = args.send_timeout
        frontend = SocketFrontend(
            loop,
            listen=args.listen,
            socket_path=args.socket,
            config=FrontendConfig(**overrides),
        )
        code = frontend.serve_forever()
    else:
        code = loop.run()
    if args.metrics:
        print(render(obs.snapshot(), title="Metrics"), file=sys.stderr)
    return code


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    # The runner collects failures itself; start the process-wide fallback
    # registry empty so repeated in-process invocations don't accumulate.
    clear_recorded_failures()

    for spec in args.inject:
        try:
            faults.arm_from_spec(spec)
        except ValueError as error:
            print(f"--inject: {error}")
            return 2

    cache_dir = args.cache
    try:
        dataset_ids = _parse_datasets(args.datasets)
    except ValueError as error:
        print(f"--datasets: {error}")
        return 2

    if args.experiment == "trace":
        return _trace_command(cache_dir, args.last)

    if args.experiment == "doctor":
        return _doctor_command(cache_dir, args)

    if args.experiment == "chaos":
        return _chaos_command(dataset_ids, cache_dir, args)

    if args.experiment == "serve":
        return _serve_command(args)

    if args.experiment == "scale-up":
        return _scale_command(cache_dir, args)

    if cache_dir is not None and args.experiment not in ("list",):
        problem = check_cache_dir_writable(cache_dir)
        if problem is not None:
            print(f"error: {problem}")
            print("hint: pass --cache '' to run without an on-disk cache, "
                  "or point --cache at a writable directory")
            return 2

    policy = ExecutionPolicy(
        max_attempts=args.retries,
        deadline_seconds=args.timeout,
        seed=args.seed,
    )
    runner = ExperimentRunner(
        config=RunnerConfig(
            scale=args.scale,
            seed=args.seed,
            cache_dir=cache_dir,
            policy=policy,
            workers=args.workers,
            breaker_threshold=args.breaker_threshold,
            memory_budget_mb=args.memory_budget,
            disk_reserve_mb=args.disk_reserve,
            adaptive_deadlines=args.adaptive_deadlines,
            hang_deadline_seconds=args.hang_deadline,
            auto_degrade_workers=not args.no_auto_degrade,
        )
    )
    if args.profile:
        runner.obs.profiler.start()

    if args.experiment == "list":
        print(
            "experiments:",
            ", ".join(
                [*_TABLES, *_FIGURES, "blocking", "verdicts", "audit",
                 "snapshot", "serve", "scale-up", "trace"]
            ),
        )
        print("established datasets:", ", ".join(ESTABLISHED_DATASET_IDS))
        print("source datasets:", ", ".join(SOURCE_DATASET_IDS))
        return 0

    if args.experiment == "audit":
        if args.dataset is None:
            print("audit requires a dataset id (see 'repro list')")
            return 2
        print(_audit(runner, args.dataset))
        _print_failures(runner)
        _print_observability(runner, args)
        return 0

    if args.experiment in ("blocking", "block"):
        from repro.experiments.tables import blocking_provenance_table

        if dataset_ids is not None:
            outside = [d for d in dataset_ids if d not in SOURCE_DATASET_IDS]
            if outside:
                print(
                    f"--datasets: blocking provenance needs source dataset "
                    f"ids, got {', '.join(outside)} (see 'repro list')"
                )
                return 2
        headers, rows = blocking_provenance_table(runner, dataset_ids)
        if args.blocker != "all":
            wanted = (
                {"lsh", "graph"} if args.blocker == "ann" else {args.blocker}
            )
            rows = [row for row in rows if row[1] in wanted]
        print(render((headers, rows),
                     title="Blocking provenance — recall/CSSR per backend"))
        _print_failures(runner)
        _print_observability(runner, args)
        return 0

    if args.experiment == "verdicts":
        from repro.datasets.registry import SOURCE_DATASET_IDS as _SOURCES
        from repro.experiments.tables import verdict_table

        if dataset_ids is not None:
            print(render(verdict_table(runner, dataset_ids), title="Verdicts"))
        else:
            print(render(verdict_table(runner), title="Verdicts — established"))
            print()
            print(render(verdict_table(runner, _SOURCES),
                         title="Verdicts — new benchmarks"))
        _print_failures(runner)
        _print_observability(runner, args)
        return 0

    if args.experiment == "snapshot":
        from repro.experiments.snapshot import save_snapshot

        out = args.out if args.out is not None else Path("snapshot.json")
        snapshot = save_snapshot(runner, out)
        n_failures = len(snapshot["failures"])  # type: ignore[arg-type]
        print(f"snapshot written to {out} ({n_failures} degraded unit(s))")
        _print_failures(runner)
        _print_observability(runner, args)
        return 0

    if args.experiment in _TABLES:
        builder, title = _TABLES[args.experiment]
        if args.experiment == "table4" and dataset_ids is not None:
            print(render(tables.table4(runner, dataset_ids), title=title))
        else:
            print(render(builder(runner), title=title))
        _print_failures(runner)
        _print_observability(runner, args)
        return 0

    if args.experiment in _FIGURES:
        builder, title = _FIGURES[args.experiment]
        print(render(builder(runner), title=title))
        _print_failures(runner)
        _print_observability(runner, args)
        return 0

    print(f"unknown experiment {args.experiment!r}; try 'repro list'")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
