"""Command-line interface: regenerate any experiment from a shell.

Usage (after ``pip install -e .``)::

    python -m repro table3                # print Table III
    python -m repro table4 --scale 0.5    # half-scale matcher sweep
    python -m repro fig1                  # Figure 1 series
    python -m repro audit Ds4             # four-measure audit of one dataset
    python -m repro list                  # list datasets and experiments

Heavy sweeps honour ``--cache DIR`` (default ``.benchcache``), sharing the
cache with the pytest-benchmark harness.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.datasets.registry import ESTABLISHED_DATASET_IDS, SOURCE_DATASET_IDS
from repro.experiments import figures, tables
from repro.experiments.report import render_figure, render_table
from repro.experiments.runner import ExperimentRunner

_TABLES = {
    "table3": (tables.table3, "Table III — established benchmarks"),
    "table4": (tables.table4, "Table IV — F1 per matcher and dataset"),
    "table5": (tables.table5, "Table V — new benchmarks (DeepBlocker)"),
    "table6": (tables.table6, "Table VI — F1 per matcher (new benchmarks)"),
    "table7": (tables.table7, "Table VII — existing vs new benchmarks"),
}

_FIGURES = {
    "fig1": (figures.figure1, "Figure 1 — degree of linearity (established)"),
    "fig2": (figures.figure2, "Figure 2 — complexity measures (established)"),
    "fig3": (figures.figure3, "Figure 3 — NLB and LBM (established)"),
    "fig4": (figures.figure4, "Figure 4 — degree of linearity (new)"),
    "fig5": (figures.figure5, "Figure 5 — complexity measures (new)"),
    "fig6": (figures.figure6, "Figure 6 — NLB and LBM (new)"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables, figures and audits.",
    )
    parser.add_argument(
        "experiment",
        help="table3..table7, fig1..fig6, audit, or list",
    )
    parser.add_argument(
        "dataset",
        nargs="?",
        default=None,
        help="dataset id for 'audit' (e.g. Ds4 or abt_buy)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset size factor (1.0 = CI scale)",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=Path(".benchcache"),
        help="matcher-sweep cache directory ('' to disable)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="global experiment seed"
    )
    return parser


def _audit(runner: ExperimentRunner, dataset_id: str) -> str:
    assessment = runner.assessment(dataset_id, with_practical=True)
    practical = assessment.practical
    assert practical is not None
    lines = [
        f"=== {dataset_id} ===",
        f"linearity (cosine):  {assessment.linearity['cosine'].max_f1:.3f}",
        f"linearity (jaccard): {assessment.linearity['jaccard'].max_f1:.3f}",
        f"mean complexity:     {assessment.complexity.mean:.3f}",
        f"non-linear boost:    {100 * practical.non_linear_boost:.1f}%",
        f"learning margin:     {100 * practical.learning_based_margin:.1f}%",
        f"easy by linearity:   {assessment.easy_by_linearity}",
        f"easy by complexity:  {assessment.easy_by_complexity}",
        f"easy by practical:   {assessment.easy_by_practical}",
        f"CHALLENGING:         {assessment.is_challenging}",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    cache_dir = args.cache if str(args.cache) else None
    runner = ExperimentRunner(
        size_factor=args.scale, seed=args.seed, cache_dir=cache_dir
    )

    if args.experiment == "list":
        print("experiments:", ", ".join([*_TABLES, *_FIGURES, "verdicts", "audit"]))
        print("established datasets:", ", ".join(ESTABLISHED_DATASET_IDS))
        print("source datasets:", ", ".join(SOURCE_DATASET_IDS))
        return 0

    if args.experiment == "audit":
        if args.dataset is None:
            print("audit requires a dataset id (see 'repro list')")
            return 2
        print(_audit(runner, args.dataset))
        return 0

    if args.experiment == "verdicts":
        from repro.datasets.registry import SOURCE_DATASET_IDS as _SOURCES
        from repro.experiments.tables import verdict_table

        headers, rows = verdict_table(runner)
        print(render_table(headers, rows, title="Verdicts — established"))
        headers, rows = verdict_table(runner, _SOURCES)
        print()
        print(render_table(headers, rows, title="Verdicts — new benchmarks"))
        return 0

    if args.experiment in _TABLES:
        builder, title = _TABLES[args.experiment]
        headers, rows = builder(runner)
        print(render_table(headers, rows, title=title))
        return 0

    if args.experiment in _FIGURES:
        builder, title = _FIGURES[args.experiment]
        print(render_figure(builder(runner), title=title))
        return 0

    print(f"unknown experiment {args.experiment!r}; try 'repro list'")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
