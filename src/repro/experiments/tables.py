"""Builders for Tables III, IV, V, VI and VII.

Each builder returns (headers, rows) where rows are lists of strings, ready
for :func:`repro.experiments.report.render_table`. Data comes exclusively
from an :class:`ExperimentRunner`, so the expensive sweeps are shared with
the figure builders.
"""

from __future__ import annotations

from repro.datasets.registry import (
    ESTABLISHED_DATASET_IDS,
    NEW_BENCHMARK_LABELS,
    SOURCE_DATASET_IDS,
)
from repro.experiments.matcher_suite import family_of
from repro.experiments.runner import ExperimentRunner

Table = tuple[list[str], list[list[str]]]

#: Table VII's (existing, new) juxtaposition pairs: same-origin benchmarks.
TABLE7_PAIRS: tuple[tuple[str, str], ...] = (
    ("Dt1", "abt_buy"),
    ("Ds1", "dblp_acm"),
    ("Ds2", "dblp_scholar"),
    ("Ds4", "walmart_amazon"),
    ("Ds6", "amazon_google"),
)


#: Cell text for a matcher that failed and was degraded (see
#: ``MatcherResult.degraded``): explicitly marked, never a silent zero.
DEGRADED_CELL = "FAIL"

#: Cell text for a matcher with no result at all (sweep-level failure).
MISSING_CELL = "-"


def _fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


def _f1_cell(result) -> str:
    if result is None:
        return MISSING_CELL
    if result.degraded:
        return DEGRADED_CELL
    return _fmt(result.f1_percent)


def table3(runner: ExperimentRunner) -> Table:
    """Table III: characteristics of the established benchmarks."""
    headers = [
        "dataset", "|D1|", "|D2|", "|A|",
        "|Itr|", "|Ptr|", "|Ntr|", "|Ite|", "|Pte|", "|Nte|", "IR",
    ]
    rows = []
    for dataset_id in ESTABLISHED_DATASET_IDS:
        stats = runner.established_task(dataset_id).statistics()
        rows.append(
            [
                dataset_id,
                str(stats.left_size),
                str(stats.right_size),
                str(stats.n_attributes),
                str(stats.training_instances),
                str(stats.training_positives),
                str(stats.training_negatives),
                str(stats.testing_instances),
                str(stats.testing_positives),
                str(stats.testing_negatives),
                f"{100 * stats.imbalance_ratio:.1f}%",
            ]
        )
    return headers, rows


def _f1_table(runner: ExperimentRunner, dataset_ids: tuple[str, ...]) -> Table:
    labels = [
        NEW_BENCHMARK_LABELS.get(dataset_id, dataset_id)
        for dataset_id in dataset_ids
    ]
    headers = ["matcher", "family", *labels]
    # Parallel runners fan the per-dataset sweeps out in one batch; the
    # sequential path is untouched (sweep_all then degenerates to a loop).
    if getattr(runner, "workers", 1) > 1:
        runner.sweep_all(dataset_ids)
    all_results = {
        dataset_id: runner.matcher_results(dataset_id)
        for dataset_id in dataset_ids
    }
    # A sweep that failed entirely yields an empty dict; take the roster
    # from the first dataset that has one so the table still renders.
    matcher_names: list[str] = []
    for results in all_results.values():
        if results:
            matcher_names = list(results)
            break
    rows = []
    for name in matcher_names:
        row = [name, family_of(name)]
        for dataset_id in dataset_ids:
            row.append(_f1_cell(all_results[dataset_id].get(name)))
        rows.append(row)
    return headers, rows


def table4(
    runner: ExperimentRunner, dataset_ids: tuple[str, ...] | None = None
) -> Table:
    """Table IV: F1 of every matcher on the 13 established benchmarks.

    *dataset_ids* restricts the columns (the CLI's ``--datasets`` filter
    and the chaos/crash checkers' way of sweeping a small subset).
    """
    return _f1_table(
        runner,
        tuple(dataset_ids) if dataset_ids is not None else ESTABLISHED_DATASET_IDS,
    )


def table5(runner: ExperimentRunner) -> Table:
    """Table V: the new benchmarks and their tuned DeepBlocker provenance."""
    headers = [
        "dataset", "origin", "|D1|", "|D2|", "|M|", "|A|",
        "PC", "PQ", "|C|", "|P|", "config",
        "|Itr|", "|Ite|", "|Ptr|", "|Pte|", "IR",
    ]
    rows = []
    for source_id in SOURCE_DATASET_IDS:
        benchmark = runner.new_benchmark(source_id)
        task = benchmark.task
        stats = task.statistics()
        rows.append(
            [
                benchmark.label,
                source_id,
                str(len(benchmark.sources.left)),
                str(len(benchmark.sources.right)),
                str(benchmark.sources.n_matches),
                str(stats.n_attributes),
                _fmt(benchmark.blocking.pair_completeness, 3),
                _fmt(benchmark.blocking.pairs_quality, 3),
                str(benchmark.blocking.result.n_candidates),
                str(benchmark.blocking.result.n_matching_candidates),
                benchmark.blocking.config.describe(),
                str(stats.training_instances),
                str(stats.testing_instances),
                str(stats.training_positives),
                str(stats.testing_positives),
                f"{100 * benchmark.imbalance_ratio:.1f}%",
            ]
        )
    return headers, rows


def table6(runner: ExperimentRunner) -> Table:
    """Table VI: F1 of every matcher on the 8 new benchmarks."""
    return _f1_table(runner, SOURCE_DATASET_IDS)


def blocking_provenance_table(
    runner: ExperimentRunner, dataset_ids: tuple[str, ...] | None = None
) -> Table:
    """Table V companion: blocking recall/CSSR per backend per source.

    One row per (source, backend): the exhaustive q-gram baseline next
    to the tuned LSH and small-world graph ANN backends, with pair
    completeness, pairs quality, candidate count, CSSR (the fraction of
    the cross product kept) and wall time — the provenance behind the
    ``--blocker ann`` path.
    """
    if dataset_ids is None:
        dataset_ids = SOURCE_DATASET_IDS
    headers = [
        "dataset", "backend", "PC", "PQ", "|C|", "CSSR", "seconds", "config",
    ]
    rows = []
    for source_id in dataset_ids:
        sweep = runner.blocking_provenance(source_id)
        label = NEW_BENCHMARK_LABELS.get(source_id, source_id)
        for backend in ("exhaustive", "lsh", "graph"):
            provenance = sweep.get(backend)
            if provenance is None:
                continue
            rows.append(
                [
                    label,
                    backend,
                    _fmt(provenance.result.pair_completeness, 3),
                    _fmt(provenance.result.pairs_quality, 3),
                    str(provenance.result.n_candidates),
                    f"{100 * provenance.cssr:.2f}%",
                    _fmt(provenance.seconds, 2),
                    provenance.config,
                ]
            )
    return headers, rows


def _established_provenance(runner: ExperimentRunner, dataset_id: str) -> tuple[float, float, float]:
    """(PC, PQ, IR) of an established benchmark from its generation metadata."""
    task = runner.established_task(dataset_id)
    pairs = task.all_pairs()
    n_source_matches = task.metadata.get("n_source_matches")
    if isinstance(n_source_matches, int) and n_source_matches > 0:
        pair_completeness = pairs.positive_count / n_source_matches
    else:
        pair_completeness = float("nan")
    imbalance = pairs.imbalance_ratio
    # For a labeled candidate set, PQ (matches / candidates) equals IR.
    return pair_completeness, imbalance, imbalance


def verdict_table(
    runner: ExperimentRunner, dataset_ids: tuple[str, ...] | None = None
) -> Table:
    """The paper's conclusion as a table: four gates + final verdict.

    Defaults to the 13 established benchmarks; pass
    ``SOURCE_DATASET_IDS`` for the new ones. This is the view behind
    Section V's "only D_s4, D_s6, D_d4 and D_t1 are challenging".
    """
    if dataset_ids is None:
        dataset_ids = ESTABLISHED_DATASET_IDS
    headers = [
        "dataset", "linearity", "complexity", "NLB", "LBM",
        "easy:lin", "easy:cmplx", "easy:pract", "verdict",
    ]
    if getattr(runner, "workers", 1) > 1:
        runner.sweep_all(dataset_ids)
    rows = []
    for dataset_id in dataset_ids:
        assessment = runner.assessment(dataset_id, with_practical=True)
        practical = assessment.practical
        # A failed sweep yields unmeasured (NaN) practical measures: the
        # gate renders as unknown ("-"/"?"), never as a fabricated "yes".
        measured = assessment.has_practical
        rows.append(
            [
                NEW_BENCHMARK_LABELS.get(dataset_id, dataset_id),
                _fmt(assessment.max_linearity, 3),
                _fmt(assessment.complexity.mean, 3),
                f"{100 * practical.non_linear_boost:+.1f}%" if measured else MISSING_CELL,
                f"{100 * practical.learning_based_margin:.1f}%" if measured else MISSING_CELL,
                "yes" if assessment.easy_by_linearity else "no",
                "yes" if assessment.easy_by_complexity else "no",
                ("yes" if assessment.easy_by_practical else "no") if measured else "?",
                "CHALLENGING" if assessment.is_challenging else "easy",
            ]
        )
    return headers, rows


def table7(runner: ExperimentRunner) -> Table:
    """Table VII: existing vs new benchmarks of the same origin."""
    headers = [
        "existing", "PC", "PQ", "IR",
        "new", "PC'", "PQ'", "IR'",
    ]
    rows = []
    for established_id, source_id in TABLE7_PAIRS:
        pair_completeness, pairs_quality, imbalance = _established_provenance(
            runner, established_id
        )
        benchmark = runner.new_benchmark(source_id)
        rows.append(
            [
                established_id,
                _fmt(pair_completeness, 3),
                _fmt(pairs_quality, 3),
                f"{100 * imbalance:.2f}%",
                benchmark.label,
                _fmt(benchmark.blocking.pair_completeness, 3),
                _fmt(benchmark.blocking.pairs_quality, 3),
                f"{100 * benchmark.imbalance_ratio:.2f}%",
            ]
        )
    return headers, rows
