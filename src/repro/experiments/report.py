"""Plain-text rendering of every reportable artefact, behind one entry point.

:func:`render` dispatches on the artefact's shape — ``(headers, rows)``
tables, figure series, failure/worker-report sequences, metrics snapshots
(:func:`repro.obs.metrics.is_metrics_snapshot`) and trace span sequences —
so the CLI and the snapshot path share a single formatting surface. The
historical per-type functions (``render_table`` & co.) remain as thin
deprecated aliases.
"""

from __future__ import annotations

import warnings
from typing import Mapping, Sequence

from repro.experiments.figures import FigureSeries
from repro.obs.metrics import is_metrics_snapshot
from repro.obs.spans import Span
from repro.runtime import FailureRecord, WorkerReport


def render(artifact: object, *, title: str | None = None) -> str:
    """Render any reportable artefact as aligned monospaced text.

    Dispatch, by shape:

    * ``(headers, rows)`` 2-tuple — an aligned table;
    * a metrics snapshot (mapping with exactly the
      ``counters``/``gauges``/``timers`` keys) — a metrics table;
    * any other mapping — a :data:`FigureSeries` (label -> series);
    * a sequence of :class:`FailureRecord` — the degraded-units table;
    * a sequence of :class:`WorkerReport` — the per-worker timing table;
    * a sequence of :class:`~repro.obs.spans.Span` — an indented trace
      tree;
    * an empty sequence — ``""`` (so callers can print unconditionally).
    """
    if isinstance(artifact, tuple) and len(artifact) == 2:
        headers, rows = artifact
        return _table(list(headers), [list(row) for row in rows], title=title)
    if isinstance(artifact, Mapping):
        if is_metrics_snapshot(artifact):
            return _metrics(artifact, title=title)
        return _figure(artifact, title=title)
    if isinstance(artifact, Sequence) and not isinstance(artifact, (str, bytes)):
        if not artifact:
            return ""
        first = artifact[0]
        if isinstance(first, FailureRecord):
            return _failures(artifact, title=title or "Degraded units")
        if isinstance(first, WorkerReport):
            return _workers(artifact, title=title or "Per-worker timing")
        if isinstance(first, Span):
            return _trace(artifact, title=title or "Trace")
    raise TypeError(
        f"render() cannot dispatch on {type(artifact).__name__}; expected a "
        "(headers, rows) tuple, a figure/metrics mapping, or a sequence of "
        "FailureRecord / WorkerReport / Span"
    )


# -- per-shape renderers (internal; reach them through render()) -----------


def _table(
    headers: list[str], rows: list[list[str]], title: str | None = None
) -> str:
    """Align a (headers, rows) table into monospaced text."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in rows))
        if rows
        else len(headers[column])
        for column in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def _failures(
    failures: Sequence[FailureRecord], title: str | None = "Degraded units"
) -> str:
    """The run's :class:`FailureRecord` list as an aligned table."""
    if not failures:
        return ""
    headers = ["unit", "phase", "attempts", "error", "elapsed"]
    rows = [
        [
            failure.unit_id,
            failure.phase,
            str(failure.attempts),
            f"{failure.exception_type}: {failure.message}"[:72],
            f"{failure.elapsed_seconds:.2f}s",
        ]
        for failure in failures
    ]
    return _table(headers, rows, title=title)


def _workers(
    reports: Sequence[WorkerReport], title: str | None = "Per-worker timing"
) -> str:
    """The scheduler's per-worker utilisation as an aligned table."""
    if not reports:
        return ""
    headers = ["worker", "pid", "units", "busy"]
    rows = [
        [
            f"w{index}",
            str(report.worker_pid),
            str(report.units),
            f"{report.busy_seconds:.2f}s",
        ]
        for index, report in enumerate(reports)
    ]
    return _table(headers, rows, title=title)


def _figure(figure: FigureSeries, title: str | None = None) -> str:
    """A figure's series as an aligned dataset x value table."""
    if not figure:
        return title or ""
    value_names = list(next(iter(figure.values())))
    headers = ["dataset", *value_names]
    rows = [
        [label, *(f"{series[name]:.3f}" for name in value_names)]
        for label, series in figure.items()
    ]
    return _table(headers, rows, title=title)


def _metrics(snapshot: Mapping, title: str | None = None) -> str:
    """A metrics snapshot as one aligned name/kind/value table.

    Counters show their count, gauges their last value, timers a compact
    ``n=... total=... mean=...`` summary — one row per metric, sorted by
    name within each kind (the snapshot is already sorted).
    """
    rows: list[list[str]] = []
    for name, value in snapshot["counters"].items():
        rows.append([name, "counter", _number(value)])
    for name, value in snapshot["gauges"].items():
        rows.append([name, "gauge", _number(value)])
    for name, stat in snapshot["timers"].items():
        rows.append(
            [
                name,
                "timer",
                (
                    f"n={stat['count']:.0f} total={stat['total']:.3f}s "
                    f"mean={stat['mean']:.3f}s"
                ),
            ]
        )
    if not rows:
        return title or "Metrics"
    return _table(["metric", "kind", "value"], rows, title=title or "Metrics")


def _number(value: float) -> str:
    """``3`` for whole numbers, ``0.123`` otherwise (stable table cells)."""
    if float(value).is_integer():
        return f"{value:.0f}"
    return f"{value:.3f}"


def _trace(spans: Sequence[Span], title: str | None = "Trace") -> str:
    """A span sequence as an indented parent/child tree.

    Spans whose parent is outside the sequence render as roots; children
    are ordered by start time under each parent.
    """
    if not spans:
        return ""
    by_id = {span.span_id: span for span in spans}
    children: dict[str | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: span.start_time)

    lines = [title] if title else []

    def walk(span: Span, depth: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
        label = f"{span.name} {attrs}".rstrip()
        lines.append(
            f"{'  ' * depth}{label} [{span.status}] {span.wall_seconds:.3f}s"
        )
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)


# -- deprecated aliases ----------------------------------------------------


def _deprecated(old_name: str) -> None:
    warnings.warn(
        f"{old_name}() is deprecated; use repro.experiments.report.render()",
        DeprecationWarning,
        stacklevel=3,
    )


def render_table(
    headers: list[str], rows: list[list[str]], title: str | None = None
) -> str:
    """Deprecated alias of ``render((headers, rows), title=...)``."""
    _deprecated("render_table")
    return _table(headers, rows, title=title)


def render_failures(
    failures: Sequence[FailureRecord], title: str = "Degraded units"
) -> str:
    """Deprecated alias of ``render(failures, title=...)``."""
    _deprecated("render_failures")
    return _failures(failures, title=title)


def render_worker_report(
    reports: Sequence[WorkerReport], title: str = "Per-worker timing"
) -> str:
    """Deprecated alias of ``render(reports, title=...)``."""
    _deprecated("render_worker_report")
    return _workers(reports, title=title)


def render_figure(figure: FigureSeries, title: str | None = None) -> str:
    """Deprecated alias of ``render(figure, title=...)``."""
    _deprecated("render_figure")
    return _figure(figure, title=title)
