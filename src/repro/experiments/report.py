"""Plain-text rendering of tables, figure series and failure reports."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.figures import FigureSeries
from repro.runtime import FailureRecord, WorkerReport


def render_table(
    headers: list[str], rows: list[list[str]], title: str | None = None
) -> str:
    """Align a (headers, rows) table into monospaced text."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in rows))
        if rows
        else len(headers[column])
        for column in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(width) for header, width in zip(headers, widths))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def render_failures(
    failures: Sequence[FailureRecord], title: str = "Degraded units"
) -> str:
    """Render the run's :class:`FailureRecord` list as an aligned table.

    Returns ``""`` for a clean run so callers can print unconditionally.
    """
    if not failures:
        return ""
    headers = ["unit", "phase", "attempts", "error", "elapsed"]
    rows = [
        [
            failure.unit_id,
            failure.phase,
            str(failure.attempts),
            f"{failure.exception_type}: {failure.message}"[:72],
            f"{failure.elapsed_seconds:.2f}s",
        ]
        for failure in failures
    ]
    return render_table(headers, rows, title=title)


def render_worker_report(
    reports: Sequence[WorkerReport], title: str = "Per-worker timing"
) -> str:
    """Render the scheduler's per-worker utilisation as an aligned table.

    Returns ``""`` when nothing was scheduled (sequential runs), so
    callers can print unconditionally.
    """
    if not reports:
        return ""
    headers = ["worker", "pid", "units", "busy"]
    rows = [
        [
            f"w{index}",
            str(report.worker_pid),
            str(report.units),
            f"{report.busy_seconds:.2f}s",
        ]
        for index, report in enumerate(reports)
    ]
    return render_table(headers, rows, title=title)


def render_figure(figure: FigureSeries, title: str | None = None) -> str:
    """Render a figure's series as an aligned dataset x value table."""
    if not figure:
        return title or ""
    value_names = list(next(iter(figure.values())))
    headers = ["dataset", *value_names]
    rows = [
        [label, *(f"{series[name]:.3f}" for name in value_names)]
        for label, series in figure.items()
    ]
    return render_table(headers, rows, title=title)
