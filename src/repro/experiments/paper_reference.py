"""The paper's reported results, transcribed as reference data.

These constants hold the numbers the ICDE 2024 paper reports in its
evaluation (Tables IV, V and VI plus the Section V/VI verdicts), so the
reproduction can be compared against them quantitatively — not to match
absolute values (the substrate differs, see DESIGN.md) but to check the
*shape*: who wins where, which datasets pass which difficulty gates.

``None`` entries correspond to the paper's hyphens ("insufficient memory")
or missing values.
"""

from __future__ import annotations

#: Established dataset order of Table IV columns.
ESTABLISHED_ORDER: tuple[str, ...] = (
    "Ds1", "Ds2", "Ds3", "Ds4", "Ds5", "Ds6", "Ds7",
    "Dd1", "Dd2", "Dd3", "Dd4", "Dt1", "Dt2",
)

#: New benchmark order of Table VI columns.
NEW_ORDER: tuple[str, ...] = (
    "Dn1", "Dn2", "Dn3", "Dn4", "Dn5", "Dn6", "Dn7", "Dn8",
)

#: Table IV — F1 (x100) per matcher and established dataset, as run by the
#: paper's authors (their own experiments, not the literature rows).
PAPER_TABLE4: dict[str, tuple[float | None, ...]] = {
    "DeepMatcher (15)": (98.65, 95.50, 88.46, 69.66, 75.86, 65.98, 95.45,
                         96.63, 93.07, 75.00, 46.56, 68.53, 94.04),
    "DeepMatcher (40)": (98.76, 93.70, 84.62, 64.42, 66.67, 53.73, 91.67,
                         96.54, 92.73, 66.67, 46.99, 69.21, None),
    "DITTO (15)": (51.46, 88.62, 67.61, 51.44, 42.62, 70.66, 28.76,
                   42.29, 91.21, 61.73, 44.15, 38.94, 54.60),
    "DITTO (40)": (89.43, 91.18, 56.82, 58.02, 28.00, 66.94, 65.67,
                   90.16, 91.05, 65.06, 60.80, 42.09, 64.77),
    "EMTransformer-B (15)": (98.99, 95.42, 92.59, 80.80, 82.35, 68.14, 97.78,
                             98.88, 95.24, 98.04, 79.59, 83.94, 78.31),
    "EMTransformer-B (40)": (99.21, 95.38, 92.31, 82.72, 82.35, 66.20, 97.78,
                             98.99, 95.53, 94.34, 82.81, 85.42, 77.65),
    "EMTransformer-R (15)": (98.87, 95.90, 96.15, 84.83, 80.00, 69.04, 100.00,
                             98.19, 95.78, 94.12, 83.95, 89.29, 77.65),
    "EMTransformer-R (40)": (98.52, 95.83, 94.55, 85.04, 80.00, 68.36, 100.00,
                             98.30, 95.22, 94.34, 82.69, 87.11, 77.12),
    "GNEM (10)": (98.21, 95.19, 96.43, 84.96, 77.78, 70.85, 100.00,
                  98.87, 93.93, 94.74, 79.19, 88.66, None),
    "GNEM (40)": (98.55, 94.95, 98.18, 20.45, 80.00, 74.75, 100.00,
                  98.87, 93.92, 89.66, 83.87, 86.49, None),
    "HierMatcher (10)": (None, 94.85, None, 79.37, 72.00, 72.06, 100.00,
                         None, None, None, 58.63, None, None),
    "HierMatcher (40)": (None, 94.85, None, 79.37, 72.00, 72.06, 100.00,
                         None, None, None, 58.63, None, None),
    "Magellan-DT": (97.65, 86.88, 88.52, 62.37, 84.85, 54.42, 100.00,
                    40.07, 78.76, 50.00, 33.89, 48.46, 100.00),
    "Magellan-LR": (97.66, 88.61, 84.21, 65.99, 80.00, 44.44, 100.00,
                    83.20, 76.03, 50.00, 32.77, 37.36, 100.00),
    "Magellan-RF": (98.32, 92.96, 89.66, 67.76, 84.85, 56.10, 100.00,
                    60.47, 81.67, 52.00, 38.06, 51.30, 100.00),
    "Magellan-SVM": (90.19, 81.41, 84.62, 65.03, 84.62, 2.53, 84.21,
                     10.99, 48.15, 12.12, 12.62, 0.00, 99.96),
    "ZeroER": (98.80, 65.67, 49.81, 64.41, 35.90, 18.50, 90.91,
               36.53, 39.23, 10.42, 20.00, 2.56, None),
    "SA-ESDE": (93.06, 87.57, 52.94, 45.27, 85.71, 51.58, 100.00,
                92.71, 86.80, 52.94, 45.27, 37.67, 43.97),
    "SAQ-ESDE": (93.08, 88.62, 55.81, 43.91, 82.76, 54.13, 97.77,
                 93.16, 88.51, 49.41, 42.82, 37.94, 58.40),
    "SAS-ESDE": (93.49, 87.40, 64.00, 43.62, 87.50, 48.17, 95.45,
                 93.35, 86.79, 64.00, 42.27, 40.57, 79.86),
    "SB-ESDE": (91.19, 79.63, 92.31, 67.81, 82.76, 52.65, 84.44,
                84.27, 78.18, 46.43, 42.94, 45.63, 41.23),
    "SBQ-ESDE": (91.44, 82.71, 84.21, 67.55, 83.33, 45.20, 100.00,
                 87.54, 82.29, 55.70, 37.47, 47.17, 58.37),
    "SBS-ESDE": (90.89, 82.45, 87.72, 67.35, 82.76, 46.68, 100.00,
                 85.68, 80.06, 43.14, 41.29, 49.15, 79.86),
}

#: Table VI — F1 (x100) per matcher and new benchmark.
PAPER_TABLE6: dict[str, tuple[float | None, ...]] = {
    "DeepMatcher (15)": (70.49, 52.01, 99.32, 90.50, 59.88, 69.95, 56.57, 95.10),
    "DeepMatcher (40)": (71.43, 56.15, 99.32, 89.73, 63.18, 67.28, 57.14, 93.51),
    "DITTO (15)": (86.43, 38.10, None, 86.50, 66.82, None, 71.73, 95.31),
    "DITTO (40)": (None, 67.95, None, 86.84, 0.59, None, 63.91, 95.04),
    "EMTransformer-B (15)": (84.68, 64.39, 99.43, 91.91, 67.14, 77.78, 67.56, 93.16),
    "EMTransformer-B (40)": (85.88, 65.38, 99.54, 91.26, None, 78.54, 62.86, 92.98),
    "EMTransformer-R (15)": (91.35, 65.49, 99.43, 92.51, None, 79.28, 67.55, 94.81),
    "EMTransformer-R (40)": (None, 70.12, 99.54, None, None, 77.56, 63.29, 93.21),
    "GNEM (10)": (None, None, 99.43, None, None, None, 62.89, 95.53),
    "GNEM (40)": (None, None, 99.43, None, None, None, 60.05, 95.34),
    "HierMatcher (10)": (None, None, None, 91.39, 58.52, None, 63.31, None),
    "HierMatcher (40)": (None, None, None, 91.39, 58.52, None, 63.31, None),
    "Magellan-DT": (52.55, 41.67, 99.54, 91.69, 59.72, 56.84, 50.00, 91.73),
    "Magellan-LR": (43.84, 39.19, 99.66, 91.25, 59.64, 61.10, 55.65, 91.06),
    "Magellan-RF": (57.42, 44.44, 99.66, 92.64, 61.11, 59.74, 61.18, 93.82),
    "Magellan-SVM": (None, None, 98.20, 91.01, 59.34, 61.01, 61.67, 88.70),
    "ZeroER": (32.66, 22.14, 99.32, 43.32, 0.50, 53.76, 61.52, 84.14),
    "SA-ESDE": (47.79, 40.35, 98.64, 85.75, 47.86, 43.98, 34.41, 88.24),
    "SAQ-ESDE": (44.59, 41.41, 98.64, 82.80, 49.93, 43.96, 37.77, 88.57),
    "SAS-ESDE": (47.97, 39.58, 98.75, 77.41, 49.53, 44.22, 35.19, 87.47),
    "SB-ESDE": (49.62, 46.87, 99.66, 61.95, 58.87, 60.50, 66.13, 89.95),
    "SBQ-ESDE": (52.95, 49.79, 99.66, 20.00, 7.61, 54.26, 34.07, 91.36),
    "SBS-ESDE": (53.65, 45.39, 99.66, 20.00, 7.61, 53.60, 33.43, 88.29),
}

#: Table V — blocking provenance per new benchmark:
#: (PC, PQ, |C|, K, imbalance ratio %).
PAPER_TABLE5: dict[str, tuple[float, float, int, int, float]] = {
    "Dn1": (0.899, 0.029, 33356, 31, 2.9),
    "Dn2": (0.910, 0.074, 13540, 10, 7.4),
    "Dn3": (0.983, 0.953, 2294, 1, 95.3),
    "Dn4": (0.898, 0.011, 158658, 31, 1.1),
    "Dn5": (0.891, 0.003, 322434, 63, 0.3),
    "Dn6": (0.927, 0.130, 7810, 1, 13.0),
    "Dn7": (0.894, 0.018, 43418, 17, 1.8),
    "Dn8": (0.906, 0.166, 12580, 5, 16.6),
}

#: The Section V conclusion: established datasets marked challenging.
PAPER_CHALLENGING_ESTABLISHED: frozenset[str] = frozenset(
    {"Ds4", "Ds6", "Dd4", "Dt1"}
)

#: The Section VI-A conclusion: new benchmarks marked challenging.
PAPER_CHALLENGING_NEW: frozenset[str] = frozenset(
    {"Dn1", "Dn2", "Dn6", "Dn7"}
)


def paper_best_f1(
    table: dict[str, tuple[float | None, ...]],
    order: tuple[str, ...],
    dataset: str,
    family_filter=None,
) -> float:
    """Best paper-reported F1 on *dataset*, optionally filtered by family.

    ``family_filter`` receives a matcher name and returns True to include
    it (use :func:`repro.experiments.matcher_suite.family_of` to build one).
    """
    column = order.index(dataset)
    values = [
        row[column]
        for name, row in table.items()
        if row[column] is not None
        and (family_filter is None or family_filter(name))
    ]
    if not values:
        raise KeyError(f"no paper values for {dataset!r} under the given filter")
    return max(values)
