"""The experiment runner: one object that caches every expensive artefact.

Tables and figures share heavy intermediates — Table IV's matcher sweep
feeds Figure 3, Table V's tuned blocking feeds Tables VI/VII and Figures
4-6. The runner memoizes datasets, matcher sweeps, new benchmarks and
assessments per (size_factor, seed), so regenerating all experiments costs
one sweep of each kind.

An optional on-disk cache (JSON, keyed by a fingerprint of the dataset
profiles) makes repeated benchmark runs cheap; pass ``cache_dir=None`` to
disable.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.core.assessment import BenchmarkAssessment, assess_benchmark
from repro.core.complexity.profile import ComplexityProfile
from repro.core.linearity import LinearityResult
from repro.core.methodology import NewBenchmark, create_benchmark
from repro.core.practical import PracticalMeasures, practical_measures
from repro.data.task import MatchingTask
from repro.datasets.registry import (
    ESTABLISHED_DATASET_IDS,
    NEW_BENCHMARK_LABELS,
    SOURCE_DATASET_IDS,
    load_established_task,
    load_source_pair,
)
from repro.experiments.matcher_suite import (
    evaluate_suite,
    linear_f1_scores,
    non_linear_f1_scores,
)
from repro.matchers.base import MatcherResult


class ExperimentRunner:
    """Cached orchestration of all experiments at one scale."""

    def __init__(
        self,
        size_factor: float = 1.0,
        seed: int = 0,
        cache_dir: Path | str | None = None,
    ) -> None:
        if size_factor <= 0:
            raise ValueError(f"size_factor must be > 0, got {size_factor}")
        self.size_factor = size_factor
        self.seed = seed
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._matcher_results: dict[str, dict[str, MatcherResult]] = {}
        self._new_benchmarks: dict[str, NewBenchmark] = {}
        self._assessments: dict[str, BenchmarkAssessment] = {}

    # -- datasets -------------------------------------------------------------

    def established_task(self, dataset_id: str) -> MatchingTask:
        """One of the 13 established benchmarks (registry-cached)."""
        return load_established_task(dataset_id, self.size_factor)

    def new_benchmark(self, source_id: str) -> NewBenchmark:
        """One of the methodology-built benchmarks D_n1..D_n8."""
        if source_id not in self._new_benchmarks:
            sources = load_source_pair(source_id, self.size_factor)
            self._new_benchmarks[source_id] = create_benchmark(
                sources,
                label=NEW_BENCHMARK_LABELS[source_id],
                seed=self.seed,
            )
        return self._new_benchmarks[source_id]

    def task_for(self, dataset_id: str) -> MatchingTask:
        """Resolve an established id (DsX/DdX/DtX) or source id to a task."""
        if dataset_id in ESTABLISHED_DATASET_IDS:
            return self.established_task(dataset_id)
        if dataset_id in SOURCE_DATASET_IDS:
            return self.new_benchmark(dataset_id).task
        raise KeyError(f"unknown dataset id {dataset_id!r}")

    # -- matcher sweeps ---------------------------------------------------------

    def _cache_path(self, dataset_id: str) -> Path | None:
        if self.cache_dir is None:
            return None
        # The fingerprint covers the generation profile, so editing a
        # dataset's calibration automatically invalidates its cached sweep.
        from repro.datasets.established import ESTABLISHED_PROFILES
        from repro.datasets.sources import SOURCE_PROFILES

        profile = ESTABLISHED_PROFILES.get(dataset_id) or SOURCE_PROFILES.get(
            dataset_id
        )
        fingerprint = hashlib.blake2b(
            f"{dataset_id}:{self.size_factor}:{self.seed}:{profile!r}".encode(),
            digest_size=8,
        ).hexdigest()
        return self.cache_dir / f"suite_{dataset_id}_{fingerprint}.json"

    def matcher_results(self, dataset_id: str) -> dict[str, MatcherResult]:
        """The full matcher sweep on one dataset (Table IV / VI columns)."""
        if dataset_id in self._matcher_results:
            return self._matcher_results[dataset_id]

        cache_path = self._cache_path(dataset_id)
        if cache_path is not None and cache_path.exists():
            results = _results_from_json(cache_path)
        else:
            results = evaluate_suite(self.task_for(dataset_id), seed=self.seed)
            if cache_path is not None:
                _results_to_json(results, cache_path)
        self._matcher_results[dataset_id] = results
        return results

    def practical(self, dataset_id: str) -> PracticalMeasures:
        """NLB and LBM for one dataset (Figure 3 / 6 bars)."""
        results = self.matcher_results(dataset_id)
        return practical_measures(
            non_linear_f1_scores(results), linear_f1_scores(results)
        )

    # -- assessments --------------------------------------------------------------

    def assessment(
        self, dataset_id: str, with_practical: bool = True
    ) -> BenchmarkAssessment:
        """The four-approach verdict for one dataset.

        The a-priori measures (linearity + complexity) are computed once
        per dataset and shared between the with/without-practical views.
        """
        key = f"{dataset_id}:{with_practical}"
        if key not in self._assessments:
            base_key = f"{dataset_id}:False"
            if base_key not in self._assessments:
                cached = self._load_assessment(dataset_id)
                if cached is None:
                    cached = assess_benchmark(
                        self.task_for(dataset_id), practical=None
                    )
                    self._store_assessment(dataset_id, cached)
                self._assessments[base_key] = cached
            if with_practical:
                base = self._assessments[base_key]
                self._assessments[key] = BenchmarkAssessment(
                    task_name=base.task_name,
                    linearity=base.linearity,
                    complexity=base.complexity,
                    practical=self.practical(dataset_id),
                    thresholds=base.thresholds,
                )
        return self._assessments[key]

    def linearity(self, dataset_id: str) -> dict[str, LinearityResult]:
        """Degree of linearity (Figure 1 / 4 bars) via the assessment cache."""
        return self.assessment(dataset_id, with_practical=False).linearity

    # -- a-priori assessment disk cache ------------------------------------

    def _assessment_path(self, dataset_id: str) -> Path | None:
        cache_path = self._cache_path(dataset_id)
        if cache_path is None:
            return None
        return cache_path.with_name("apriori_" + cache_path.name[6:])

    def _store_assessment(
        self, dataset_id: str, assessment: BenchmarkAssessment
    ) -> None:
        path = self._assessment_path(dataset_id)
        if path is None:
            return
        payload = {
            "task_name": assessment.task_name,
            "linearity": {
                name: {
                    "similarity": result.similarity,
                    "max_f1": result.max_f1,
                    "best_threshold": result.best_threshold,
                }
                for name, result in assessment.linearity.items()
            },
            "complexity": assessment.complexity.scores,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1), encoding="utf-8")

    def _load_assessment(self, dataset_id: str) -> BenchmarkAssessment | None:
        path = self._assessment_path(dataset_id)
        if path is None or not path.exists():
            return None
        payload = json.loads(path.read_text(encoding="utf-8"))
        return BenchmarkAssessment(
            task_name=payload["task_name"],
            linearity={
                name: LinearityResult(
                    similarity=entry["similarity"],
                    max_f1=entry["max_f1"],
                    best_threshold=entry["best_threshold"],
                )
                for name, entry in payload["linearity"].items()
            },
            complexity=ComplexityProfile(scores=payload["complexity"]),
        )


_default_runner: ExperimentRunner | None = None


def default_runner() -> ExperimentRunner:
    """The process-wide runner at CI scale (created on first use)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner(size_factor=1.0, seed=0)
    return _default_runner


def _results_to_json(results: dict[str, MatcherResult], path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        name: {
            "task": result.task,
            "precision": result.precision,
            "recall": result.recall,
            "f1": result.f1,
            "fit_seconds": result.fit_seconds,
            "predict_seconds": result.predict_seconds,
        }
        for name, result in results.items()
    }
    path.write_text(json.dumps(payload, indent=1), encoding="utf-8")


def _results_from_json(path: Path) -> dict[str, MatcherResult]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {
        name: MatcherResult(
            matcher=name,
            task=entry["task"],
            precision=entry["precision"],
            recall=entry["recall"],
            f1=entry["f1"],
            fit_seconds=entry["fit_seconds"],
            predict_seconds=entry["predict_seconds"],
        )
        for name, entry in payload.items()
    }
