"""The experiment runner: one object that caches every expensive artefact.

Tables and figures share heavy intermediates — Table IV's matcher sweep
feeds Figure 3, Table V's tuned blocking feeds Tables VI/VII and Figures
4-6. The runner memoizes datasets, matcher sweeps, new benchmarks and
assessments per (size_factor, seed), so regenerating all experiments costs
one sweep of each kind.

An optional on-disk cache (JSON, keyed by a fingerprint of the dataset
profiles) makes repeated benchmark runs cheap; pass ``cache_dir=None`` to
disable.

Persistence is fault tolerant (see :mod:`repro.runtime`): every cache
entry is a versioned, checksummed envelope written atomically; corrupt or
stale entries are quarantined and recomputed instead of aborting the run;
a checkpoint journal (``checkpoint.journal`` in the cache directory)
records completed units so an interrupted full-suite regeneration resumes
where it stopped — the runner consults ``is_done`` before recomputing and
surfaces journal/cache divergence as a failure instead of silently
recomputing. Expensive units run under an :class:`ExecutionPolicy`
(retries, backoff, deadlines) and failures surface as
:class:`FailureRecord` data through :meth:`ExperimentRunner.failure_records`.

With ``workers > 1`` (or an injected :class:`ParallelScheduler`) the
per-dataset sweeps of a full regeneration — and the per-matcher units of
a single sweep — fan out across ``fork`` worker processes with results
identical to the sequential run (same seeds, deterministic merge order);
see :meth:`ExperimentRunner.sweep_all`.

The runner is configured by a frozen :class:`RunnerConfig` (legacy
positional arguments still work behind a deprecation shim) and is wired
into :mod:`repro.obs`: every sweep/assessment opens a trace span, cache
and journal events increment metrics, and — when a cache directory is
set — closed spans append to ``<cache_dir>/trace.jsonl``. Worker spans
and metric deltas marshal back to the parent, so traces and counters are
identical for any worker count (DESIGN.md §8).
"""

from __future__ import annotations

import hashlib
import logging
import math
import os
import time
import warnings
from contextlib import nullcontext
from dataclasses import dataclass, replace
from pathlib import Path

from repro import obs as obs_module
from repro.core.assessment import BenchmarkAssessment, assess_benchmark
from repro.core.complexity.profile import ComplexityProfile
from repro.core.linearity import LinearityResult
from repro.core.methodology import NewBenchmark, create_benchmark
from repro.core.practical import PracticalMeasures
from repro.data.task import MatchingTask
from repro.datasets.registry import (
    ESTABLISHED_DATASET_IDS,
    NEW_BENCHMARK_LABELS,
    SOURCE_DATASET_IDS,
    load_established_task,
    load_source_pair,
)
from repro.experiments.matcher_suite import (
    MATCHER_ERRORS,
    evaluate_suite,
    practical_from_results,
)
from repro.matchers.base import MatcherResult
from repro.obs import Observability
from repro.runtime import (
    BreakerRegistry,
    CheckpointJournal,
    ExecutionPolicy,
    FailureRecord,
    ParallelScheduler,
    WorkUnit,
    WorkerReport,
    faults,
    read_cached_payload,
    write_envelope,
)
from repro.runtime.guard import (
    AdaptiveDeadlineModel,
    LeaseHeld,
    ResourceGuard,
    RunLease,
    Watchdog,
)
from repro.text.feature_store import FeatureMatrixCache, feature_cache_scope

logger = logging.getLogger("repro.experiments.runner")

#: Journal file name inside the cache directory.
JOURNAL_NAME = "checkpoint.journal"


@dataclass(frozen=True, kw_only=True)
class RunnerConfig:
    """The complete configuration of an :class:`ExperimentRunner`.

    A frozen keyword-only dataclass replacing the runner's historically
    growing positional argument list — one value object to validate, log,
    and pass around:

    * ``scale`` — dataset size factor (the legacy ``size_factor``);
    * ``seed`` — the global experiment seed;
    * ``cache_dir`` — on-disk envelope cache + checkpoint journal + trace
      file location (``None`` disables persistence);
    * ``policy`` — the :class:`ExecutionPolicy` for every expensive unit;
    * ``workers`` — fan heavy units across this many ``fork`` processes;
    * ``scheduler`` — an injected :class:`ParallelScheduler` (overrides
      ``workers``);
    * ``obs`` — the :class:`~repro.obs.Observability` instance the runner
      reports spans/metrics to; defaults to the process-wide active one
      (:func:`repro.obs.active`);
    * ``breaker_threshold`` — arm per-unit circuit breakers on the
      policy: a unit that fails this many consecutive times
      short-circuits to a ``CircuitOpen`` failure instead of burning its
      retry budget (``None`` disables; ignored when the policy already
      carries a registry);
    * ``feature_cache`` — persist content-addressed feature matrices
      under ``<cache_dir>/features`` so repeated sweeps (and the fork
      workers of a parallel run) skip extraction; a no-op without
      ``cache_dir``.

    Resource supervision (see :mod:`repro.runtime.guard`):

    * ``memory_budget_mb`` / ``disk_reserve_mb`` — arm the
      :class:`ResourceGuard`: past the budget the runner degrades
      gracefully (smaller kernel batches, merge backend, feature cache
      off) before shedding units as ``BudgetExceeded`` failures; with
      workers, the budget also caps each worker's RSS via the watchdog;
    * ``adaptive_deadlines`` — learn per-phase deadlines from healthy
      durations (p99 × margin) instead of one fixed ``--timeout``;
    * ``hang_deadline_seconds`` — the watchdog's fallback worker deadline
      until the adaptive model has samples; enabling either of these arms
      the heartbeat watchdog on pooled runs (hung workers are killed,
      replaced, and recorded as ``WorkerHang``);
    * ``auto_degrade_workers`` — run ``workers > 1`` sequentially when
      forking cannot pay (single core, pathological fork overhead);
    * ``lease`` (default on) / ``lease_timeout_seconds`` /
      ``lease_stale_seconds`` — guard the cache directory with a
      :class:`RunLease` so concurrent runs never interleave journal or
      envelope writes; a second runner waits for the holder (re-checking
      the cache afterwards) or fails cleanly with a ``LeaseHeld`` record.
    """

    scale: float = 1.0
    seed: int = 0
    cache_dir: Path | str | None = None
    policy: ExecutionPolicy | None = None
    workers: int = 1
    scheduler: ParallelScheduler | None = None
    obs: Observability | None = None
    breaker_threshold: int | None = None
    feature_cache: bool = True
    memory_budget_mb: float | None = None
    disk_reserve_mb: float | None = None
    adaptive_deadlines: bool = False
    hang_deadline_seconds: float | None = None
    auto_degrade_workers: bool = False
    lease: bool = True
    lease_timeout_seconds: float = 60.0
    lease_stale_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        for name in ("memory_budget_mb", "disk_reserve_mb",
                     "hang_deadline_seconds"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")
        if self.lease_timeout_seconds < 0:
            raise ValueError(
                f"lease_timeout_seconds must be >= 0, got "
                f"{self.lease_timeout_seconds}"
            )
        if self.lease_stale_seconds <= 0:
            raise ValueError(
                f"lease_stale_seconds must be > 0, got "
                f"{self.lease_stale_seconds}"
            )
        if isinstance(self.scale, bool) or not isinstance(
            self.scale, (int, float)
        ):
            raise TypeError(
                f"size_factor must be a number, got {type(self.scale).__name__}"
            )
        if not math.isfinite(self.scale) or self.scale <= 0:
            raise ValueError(f"size_factor must be > 0, got {self.scale}")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise TypeError(
                f"seed must be an integer, got {type(self.seed).__name__}"
            )


#: Legacy positional order of ``ExperimentRunner.__init__`` (pre-config).
_LEGACY_POSITIONAL = (
    "size_factor", "seed", "cache_dir", "policy", "workers", "scheduler",
)

#: Keyword arguments the deprecation shim accepts (config fields plus the
#: legacy ``size_factor`` spelling of ``scale``).
_SHIM_KEYWORDS = frozenset(
    ("scale", "seed", "cache_dir", "policy", "workers", "scheduler", "obs",
     "breaker_threshold", "feature_cache", "size_factor",
     "memory_budget_mb", "disk_reserve_mb", "adaptive_deadlines",
     "hang_deadline_seconds", "auto_degrade_workers", "lease",
     "lease_timeout_seconds", "lease_stale_seconds")
)


def _resolve_config(
    args: tuple, config: RunnerConfig | None, kwargs: dict
) -> RunnerConfig:
    """Map every supported ``ExperimentRunner(...)`` form to one config.

    Supported forms: ``ExperimentRunner(RunnerConfig(...))`` and
    ``ExperimentRunner(config=...)`` (canonical), bare keyword arguments
    (``size_factor=``/``scale=`` etc., mapped silently), and the legacy
    positional form, which still works but emits a
    :class:`DeprecationWarning`.
    """
    if args and isinstance(args[0], RunnerConfig):
        if config is not None or len(args) > 1 or kwargs:
            raise TypeError(
                "a positional RunnerConfig cannot be combined with other "
                "ExperimentRunner arguments"
            )
        return args[0]
    if config is not None:
        if args or kwargs:
            raise TypeError(
                "config= cannot be combined with other ExperimentRunner "
                "arguments"
            )
        return config
    legacy = dict(kwargs)
    if args:
        if len(args) > len(_LEGACY_POSITIONAL):
            raise TypeError(
                f"ExperimentRunner takes at most {len(_LEGACY_POSITIONAL)} "
                f"positional arguments ({len(args)} given)"
            )
        warnings.warn(
            "positional ExperimentRunner(...) arguments are deprecated; "
            "pass a RunnerConfig (ExperimentRunner(RunnerConfig(scale=...)))"
            " or keyword arguments instead",
            DeprecationWarning,
            stacklevel=3,
        )
        for name, value in zip(_LEGACY_POSITIONAL, args):
            if name in legacy:
                raise TypeError(
                    f"ExperimentRunner got multiple values for {name!r}"
                )
            legacy[name] = value
    unknown = set(legacy) - _SHIM_KEYWORDS
    if unknown:
        raise TypeError(
            f"unknown ExperimentRunner argument(s): {sorted(unknown)}"
        )
    if "size_factor" in legacy:
        if "scale" in legacy:
            raise TypeError(
                "pass either scale= or the legacy size_factor=, not both"
            )
        legacy["scale"] = legacy.pop("size_factor")
    return RunnerConfig(**legacy)


class ExperimentRunner:
    """Cached orchestration of all experiments at one scale.

    *policy* governs every expensive unit (matcher evaluations, sweeps,
    assessments); the default performs a single attempt with no deadline,
    so behaviour matches the pre-runtime runner unless a caller opts into
    retries/timeouts. All failures the runner absorbed while degrading
    gracefully are available via :meth:`failure_records`.

    *workers* (or an injected *scheduler*) parallelizes the heavy units:
    :meth:`sweep_all` fans per-dataset sweeps — and :meth:`matcher_results`
    the per-matcher units of a single sweep — across a ``fork`` process
    pool, with results identical to ``workers=1`` and per-worker timing
    available via :meth:`worker_reports`.
    """

    def __init__(
        self,
        *args: object,
        config: RunnerConfig | None = None,
        **kwargs: object,
    ) -> None:
        self.config = _resolve_config(args, config, kwargs)
        self.size_factor = self.config.scale
        self.seed = self.config.seed
        cache_dir = self.config.cache_dir
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.policy = self.config.policy or ExecutionPolicy(
            max_attempts=1,
            backoff_base=0.0,
            seed=self.seed,
            retry_on=MATCHER_ERRORS,
        )
        if (
            self.config.breaker_threshold is not None
            and self.policy.breakers is None
        ):
            self.policy = replace(
                self.policy,
                breakers=BreakerRegistry(
                    failure_threshold=self.config.breaker_threshold
                ),
            )
        # Adaptive deadlines: learned per-phase (p99 x margin); the
        # --hang-deadline fallback only ever governs the watchdog, never
        # healthy in-process units (see learned_deadline_for).
        self.deadlines: AdaptiveDeadlineModel | None = None
        if (
            self.config.adaptive_deadlines
            or self.config.hang_deadline_seconds is not None
        ):
            self.deadlines = AdaptiveDeadlineModel(
                fallback_seconds=self.config.hang_deadline_seconds
            )
        watchdog: Watchdog | None = None
        if self.config.scheduler is None and self.config.workers > 1 and (
            self.deadlines is not None
            or self.config.memory_budget_mb is not None
        ):
            watchdog = Watchdog(
                deadlines=self.deadlines,
                rss_budget_mb=self.config.memory_budget_mb,
            )
        # Scheduler injection: an explicit scheduler wins; otherwise one is
        # built from `workers` (1 = run inline, the exact sequential path).
        self.scheduler = (
            self.config.scheduler
            if self.config.scheduler is not None
            else ParallelScheduler(
                workers=self.config.workers,
                policy=self.policy,
                watchdog=watchdog,
                auto_degrade=self.config.auto_degrade_workers,
            )
        )
        self.workers = self.scheduler.workers
        self.obs = (
            self.config.obs
            if self.config.obs is not None
            else obs_module.active()
        )
        if self.cache_dir is not None and self.obs.enabled:
            # Every span of this run lands in <cache_dir>/trace.jsonl,
            # tagged with a fresh run id (`python -m repro trace --last`).
            self.obs.trace.attach_file(
                self.cache_dir / obs_module.TRACE_FILE_NAME,
                run_id=obs_module.new_run_id(),
            )
        self.journal: CheckpointJournal | None = (
            CheckpointJournal(self.cache_dir / JOURNAL_NAME)
            if self.cache_dir is not None
            else None
        )
        # Content-addressed feature matrices live next to the sweep
        # envelopes; the cache is activated *scoped* around each heavy
        # unit (never installed globally at construction), so nested
        # runners in fork workers keep the inherited cache and tests
        # never leak one into each other.
        self.feature_cache: FeatureMatrixCache | None = (
            FeatureMatrixCache(self.cache_dir / "features")
            if self.cache_dir is not None and self.config.feature_cache
            else None
        )
        # Resource budgets: RSS + cache-volume free space with graceful
        # degradation; preflight warns (and pre-degrades for disk) before
        # any unit runs.
        self.guard: ResourceGuard | None = None
        if (
            self.config.memory_budget_mb is not None
            or self.config.disk_reserve_mb is not None
        ):
            self.guard = ResourceGuard(
                memory_budget_mb=self.config.memory_budget_mb,
                disk_reserve_mb=self.config.disk_reserve_mb,
                cache_dir=self.cache_dir,
            )
            for warning in self.guard.preflight():
                logger.warning("resource preflight: %s", warning)
        # Run lease: one writer per cache directory (journal + envelopes).
        self._lease: RunLease | None = (
            RunLease(
                self.cache_dir,
                stale_after_seconds=self.config.lease_stale_seconds,
            )
            if self.cache_dir is not None and self.config.lease
            else None
        )
        self._failures: list[FailureRecord] = []
        self._matcher_results: dict[str, dict[str, MatcherResult]] = {}
        self._new_benchmarks: dict[str, NewBenchmark] = {}
        self._assessments: dict[str, BenchmarkAssessment] = {}
        self._ann_provenance: dict[str, dict[str, object]] = {}

    @property
    def scale(self) -> float:
        """Canonical name of the legacy ``size_factor`` attribute."""
        return self.size_factor

    # -- failure accounting ----------------------------------------------------

    def failure_records(self) -> list[FailureRecord]:
        """Every failure absorbed so far (matchers, cache, sweeps)."""
        return list(self._failures)

    def record_failure(self, failure: FailureRecord) -> None:
        self._failures.append(failure)

    def _record_cache_failure(self, unit_id: str, error: str) -> None:
        self._failures.append(
            FailureRecord(
                unit_id=unit_id,
                phase="cache",
                attempts=1,
                exception_type="CacheCorruption",
                message=error,
                elapsed_seconds=0.0,
            )
        )

    def _record_persist_failure(
        self, unit_id: str, phase: str, error: BaseException
    ) -> None:
        """Persistence is best-effort: a failed write degrades, not crashes."""
        self.obs.inc("cache.write_failed" if phase == "cache" else "journal.failed")
        self._failures.append(
            FailureRecord(
                unit_id=unit_id,
                phase=phase,
                attempts=1,
                exception_type=type(error).__name__,
                message=f"persist failed: {error}",
                elapsed_seconds=0.0,
            )
        )

    def _record_lease_failure(self, unit_id: str, error: BaseException) -> None:
        """Another live run holds the cache; this unit yields cleanly."""
        self.obs.inc("guard.lease_blocked")
        self._failures.append(
            FailureRecord(
                unit_id=unit_id,
                phase="lease",
                attempts=1,
                exception_type="LeaseHeld",
                message=str(error),
                elapsed_seconds=0.0,
            )
        )

    def _acquire_lease(self, unit_id: str) -> float | None:
        """Take the cache lease for a write-bearing unit of work.

        Returns seconds waited (0.0 when uncontended or no lease is
        configured). ``None`` means the lease could not be taken within
        the timeout — a ``LeaseHeld`` failure was recorded and the caller
        must not write to the cache directory. A wait > 0 means another
        run had the directory meanwhile: re-read the journal before
        recomputing (the holder probably finished the contested units).
        """
        if self._lease is None:
            return 0.0
        try:
            waited = self._lease.acquire(self.config.lease_timeout_seconds)
        except LeaseHeld as exc:
            self._record_lease_failure(unit_id, exc)
            return None
        if waited > 0 and self.journal is not None:
            self.journal.reload()
        return waited

    def _release_lease(self) -> None:
        if self._lease is not None:
            self._lease.release()

    def _record_journal_divergence(self, unit_id: str) -> None:
        """The journal marks a unit done but its cache entry is unusable."""
        self._failures.append(
            FailureRecord(
                unit_id=unit_id,
                phase="journal",
                attempts=1,
                exception_type="JournalDivergence",
                message=(
                    "checkpoint journal marks the unit complete but no "
                    "usable cache envelope was found; recomputing"
                ),
                elapsed_seconds=0.0,
            )
        )

    def worker_reports(self) -> list[WorkerReport]:
        """Per-worker utilisation of every scheduled unit so far."""
        return self.scheduler.worker_reports()

    def _feature_scope(self):
        """Activate the runner's feature cache for one unit of work.

        Workers forked inside the scope inherit the active cache; with no
        cache configured the ambient state is left untouched (a nested
        runner inside a fork worker must not clear what it inherited).
        """
        if self.feature_cache is None:
            return nullcontext()
        return feature_cache_scope(self.feature_cache)

    # -- datasets -------------------------------------------------------------

    def established_task(self, dataset_id: str) -> MatchingTask:
        """One of the 13 established benchmarks (registry-cached)."""
        faults.fire(f"dataset:{dataset_id}")
        return load_established_task(dataset_id, self.size_factor)

    def new_benchmark(self, source_id: str) -> NewBenchmark:
        """One of the methodology-built benchmarks D_n1..D_n8."""
        if source_id not in self._new_benchmarks:
            faults.fire(f"dataset:{source_id}")
            sources = load_source_pair(source_id, self.size_factor)
            self._new_benchmarks[source_id] = create_benchmark(
                sources,
                label=NEW_BENCHMARK_LABELS[source_id],
                seed=self.seed,
            )
        return self._new_benchmarks[source_id]

    def blocking_provenance(self, source_id: str) -> dict[str, object]:
        """Recall/CSSR of each blocking backend on one generated pair.

        The Table V provenance companion: ``exhaustive`` q-gram blocking
        against the tuned ``lsh`` and default ``graph`` ANN backends (see
        :func:`repro.blocking.ann.provenance_sweep`), memoized per source
        id. Returns ``{backend: BackendProvenance}``.
        """
        if source_id not in self._ann_provenance:
            from repro.blocking.ann import provenance_sweep

            faults.fire(f"blocking:{source_id}")
            sources = load_source_pair(source_id, self.size_factor)
            with self.obs.span("blocking_provenance", dataset=source_id):
                with self._feature_scope():
                    self._ann_provenance[source_id] = provenance_sweep(
                        sources, seed=self.seed
                    )
        return self._ann_provenance[source_id]

    def task_for(self, dataset_id: str) -> MatchingTask:
        """Resolve an established id (DsX/DdX/DtX) or source id to a task."""
        if dataset_id in ESTABLISHED_DATASET_IDS:
            return self.established_task(dataset_id)
        if dataset_id in SOURCE_DATASET_IDS:
            return self.new_benchmark(dataset_id).task
        raise KeyError(f"unknown dataset id {dataset_id!r}")

    # -- matcher sweeps ---------------------------------------------------------

    def _cache_path(self, dataset_id: str) -> Path | None:
        if self.cache_dir is None:
            return None
        # The fingerprint covers the generation profile, so editing a
        # dataset's calibration automatically invalidates its cached sweep.
        from repro.datasets.established import ESTABLISHED_PROFILES
        from repro.datasets.sources import SOURCE_PROFILES

        profile = ESTABLISHED_PROFILES.get(dataset_id) or SOURCE_PROFILES.get(
            dataset_id
        )
        fingerprint = hashlib.blake2b(
            f"{dataset_id}:{self.size_factor}:{self.seed}:{profile!r}".encode(),
            digest_size=8,
        ).hexdigest()
        return self.cache_dir / f"suite_{dataset_id}_{fingerprint}.json"

    def _load_cached_sweep(
        self, dataset_id: str, unit_id: str
    ) -> dict[str, MatcherResult] | None:
        """Journal-and-envelope consult for one sweep unit.

        Returns the cached results on a hit (journaling the unit done).
        On a miss, records corruption (quarantined entry) or — when the
        checkpoint journal claims the unit complete with no corruption
        evidence — a journal/cache divergence, so resume never *silently*
        recomputes a unit the journal says is finished.
        """
        cache_path = self._cache_path(dataset_id)
        if cache_path is None:
            return None
        try:
            read = read_cached_payload(cache_path)
        except Exception as exc:
            # The read path heals corruption itself; anything escaping it
            # (an I/O error, an injected cache:read error fault) becomes a
            # recorded miss so the sweep recomputes instead of aborting.
            self._record_cache_failure(unit_id, f"cache read failed: {exc}")
            return None
        if read.hit:
            # The skipped sweep still appears in the trace (cache="hit")
            # so the span *set* of a resumed run matches a fresh one.
            with self.obs.span("sweep", dataset=dataset_id, cache="hit"):
                if self.journal is not None and self.journal.is_done(unit_id):
                    self.obs.inc("journal.skip")
                results = _results_from_payload(read.payload)
            self._mark_done(unit_id, cache=cache_path.name)
            return results
        if read.error is not None:
            # Corruption is its own record; the quarantine explains the
            # recompute, so no divergence is stacked on top of it.
            self._record_cache_failure(unit_id, read.error)
        elif self.journal is not None and self.journal.is_done(unit_id):
            self._record_journal_divergence(unit_id)
        return None

    def matcher_results(self, dataset_id: str) -> dict[str, MatcherResult]:
        """The full matcher sweep on one dataset (Table IV / VI columns).

        Resolution order: in-memory memo, then the checkpoint journal and
        on-disk envelope cache (corrupt entries quarantined and
        recomputed), then a fresh sweep under the runner's policy — with
        the per-matcher units fanned across the scheduler's workers when
        ``workers > 1``. If the *whole* sweep fails — e.g. the dataset
        cannot be generated — the failure is recorded and an empty result
        set is returned so dependent tables render hyphens instead of
        crashing.
        """
        if dataset_id in self._matcher_results:
            return self._matcher_results[dataset_id]

        unit_id = f"sweep:{dataset_id}"
        cached = self._load_cached_sweep(dataset_id, unit_id)
        if cached is not None:
            self._matcher_results[dataset_id] = cached
            return cached

        # The cache missed, so this unit will compute and write: take the
        # run lease. A failed acquire yields an empty (clean) result with
        # a LeaseHeld record; a *contended* acquire re-checks the cache —
        # the previous holder likely just finished this very sweep.
        waited = self._acquire_lease(unit_id)
        if waited is None:
            self._matcher_results[dataset_id] = {}
            return {}
        try:
            if waited > 0:
                cached = self._load_cached_sweep(dataset_id, unit_id)
                if cached is not None:
                    self._matcher_results[dataset_id] = cached
                    return cached

            def sweep() -> dict[str, MatcherResult]:
                # Span per *attempt*: a retried sweep shows up once per
                # try, with the failed attempts marked as such.
                with self.obs.span("sweep", dataset=dataset_id) as span:
                    with self.obs.timed("sweep.seconds"):
                        faults.fire(unit_id)
                        if self.guard is not None:
                            self.guard.checkpoint(unit_id)
                        results = evaluate_suite(
                            self.task_for(dataset_id),
                            seed=self.seed,
                            policy=self.policy,
                            failures=self._failures,
                            scheduler=(
                                self.scheduler if self.workers > 1 else None
                            ),
                            guard=self.guard,
                            deadlines=self.deadlines,
                        )
                    if any(result.degraded for result in results.values()):
                        span.mark_degraded()
                    return results

            # The sweep unit aggregates ~23 deadline-guarded matcher
            # units; a per-unit deadline must not also cap their sum, so
            # the enclosing execution drops it (retries/backoff still
            # apply) — unless the adaptive model has learned a realistic
            # whole-sweep deadline of its own.
            sweep_policy = replace(self.policy, deadline_seconds=None)
            if self.deadlines is not None:
                learned = self.deadlines.learned_deadline_for("sweep")
                if learned is not None:
                    sweep_policy = replace(
                        sweep_policy, deadline_seconds=learned
                    )
            started = time.perf_counter()
            with self._feature_scope():
                outcome = sweep_policy.execute(
                    sweep, unit_id=unit_id, phase="sweep"
                )
            if outcome.ok:
                results = outcome.value
                if self.deadlines is not None:
                    self.deadlines.observe(
                        "sweep", time.perf_counter() - started
                    )
                self._persist_sweep(dataset_id, unit_id, results)
            else:
                assert outcome.failure is not None
                self._failures.append(outcome.failure)
                results = {}
        finally:
            self._release_lease()
        self._matcher_results[dataset_id] = results
        return results

    def sweep_all(
        self, dataset_ids: tuple[str, ...] | None = None
    ) -> dict[str, dict[str, MatcherResult]]:
        """Matcher sweeps for many datasets, fanned across the workers.

        The parallel analogue of calling :meth:`matcher_results` in a
        loop, with identical results (same seeds; merge order is the
        *dataset_ids* order). The work queue consults the in-memory memo,
        the checkpoint journal and the envelope cache, so completed units
        are loaded in the parent and never dispatched — this is what makes
        kill/resume real under ``--workers N``. With ``workers=1`` it *is*
        the sequential loop.
        """
        ids = tuple(dataset_ids) if dataset_ids is not None else ESTABLISHED_DATASET_IDS
        if self.workers <= 1:
            return {d: self.matcher_results(d) for d in ids}

        pending: list[str] = []
        for dataset_id in ids:
            if dataset_id in self._matcher_results:
                continue
            cached = self._load_cached_sweep(dataset_id, f"sweep:{dataset_id}")
            if cached is not None:
                self._matcher_results[dataset_id] = cached
            else:
                pending.append(dataset_id)

        if pending:
            # The whole pending batch computes and persists under one
            # lease hold; after a contended acquire, re-filter — the
            # previous holder may have finished some (or all) of it.
            waited = self._acquire_lease("sweep_all")
            if waited is None:
                for dataset_id in pending:
                    self._matcher_results[dataset_id] = {}
                return {d: self._matcher_results[d] for d in ids}
            try:
                if waited > 0:
                    still_pending = []
                    for dataset_id in pending:
                        cached = self._load_cached_sweep(
                            dataset_id, f"sweep:{dataset_id}"
                        )
                        if cached is not None:
                            self._matcher_results[dataset_id] = cached
                        else:
                            still_pending.append(dataset_id)
                    pending = still_pending
                if pending:
                    self._run_pending_sweeps(pending)
            finally:
                self._release_lease()

        return {d: self._matcher_results[d] for d in ids}

    def _run_pending_sweeps(self, pending: list[str]) -> None:
        """Fan the uncached sweeps across the pool (lease already held)."""
        units = [
            WorkUnit(
                unit_id=f"sweep:{dataset_id}",
                fn=_sweep_job,
                args=(dataset_id, self.size_factor, self.seed, self.policy),
                phase="sweep",
            )
            for dataset_id in pending
        ]

        def persist(index: int, outcome) -> None:
            # Runs in the parent as each sweep finishes (completion
            # order), so a kill mid-batch loses only in-flight units —
            # completed ones resume from envelope + journal.
            if not outcome.ok:
                return
            dataset_id = pending[index]
            results, _ = outcome.value
            self._persist_sweep(dataset_id, f"sweep:{dataset_id}", results)

        sweep_policy = replace(self.policy, deadline_seconds=None)
        with self._feature_scope():
            # Workers fork inside the scope, inheriting the cache.
            schedule = self.scheduler.run(
                units, policy=sweep_policy, on_result=persist
            )
        # Failure accounting and memoization stay in submission order
        # so the record list is deterministic for any worker count.
        for dataset_id, outcome in zip(pending, schedule.outcomes):
            if outcome.ok:
                results, failures = outcome.value
                self._failures.extend(failures)
            else:
                assert outcome.failure is not None
                self._failures.append(outcome.failure)
                results = {}
            self._matcher_results[dataset_id] = results

    def practical(self, dataset_id: str) -> PracticalMeasures:
        """NLB and LBM for one dataset (Figure 3 / 6 bars).

        Degraded matcher results are excluded; if the sweep failed
        entirely — or left a whole family degraded — the measures come
        back as the NaN :func:`~repro.core.practical.unmeasured_practical`
        placeholder instead of a fabricated verdict, so figure/verdict
        builders can still render the remaining datasets.
        """
        return practical_from_results(self.matcher_results(dataset_id))

    def _persist_sweep(
        self, dataset_id: str, unit_id: str, results: dict[str, MatcherResult]
    ) -> None:
        """Best-effort envelope + journal write for one completed sweep.

        A failed envelope write is recorded and the unit is *not*
        journalled (a journal entry without a usable envelope would read
        as a divergence on resume); the in-memory results stand either
        way, so verdicts never depend on persistence succeeding. The
        write heartbeats the run lease first — if the lease was stolen by
        a *live* run meanwhile (split-brain), the write is skipped with a
        ``LeaseHeld`` record instead of interleaving with the thief's.
        """
        if self._lease is not None:
            try:
                self._lease.refresh()
            except LeaseHeld as exc:
                self._record_lease_failure(unit_id, exc)
                return
        cache_path = self._cache_path(dataset_id)
        if cache_path is not None:
            try:
                write_envelope(cache_path, _results_to_payload(results))
            except Exception as exc:
                self._record_persist_failure(unit_id, "cache", exc)
                return
        self._mark_done(unit_id, cache=getattr(cache_path, "name", None))

    def _mark_done(self, unit_id: str, **info: object) -> None:
        if self.journal is None:
            return
        try:
            self.journal.mark_done(unit_id, **info)
        except Exception as exc:
            # Losing one checkpoint costs a recompute on resume, not the
            # run; record it and move on.
            self._record_persist_failure(unit_id, "journal", exc)

    # -- assessments --------------------------------------------------------------

    def assessment(
        self, dataset_id: str, with_practical: bool = True
    ) -> BenchmarkAssessment:
        """The four-approach verdict for one dataset.

        The a-priori measures (linearity + complexity) are computed once
        per dataset and shared between the with/without-practical views.
        """
        key = f"{dataset_id}:{with_practical}"
        if key not in self._assessments:
            base_key = f"{dataset_id}:False"
            if base_key not in self._assessments:
                assess_unit = f"assess:{dataset_id}"
                cached = self._load_assessment(dataset_id)
                if cached is None:
                    cached = self._compute_assessment(dataset_id, assess_unit)
                else:
                    self._mark_done(assess_unit)
                self._assessments[base_key] = cached
            if with_practical:
                base = self._assessments[base_key]
                self._assessments[key] = BenchmarkAssessment(
                    task_name=base.task_name,
                    linearity=base.linearity,
                    complexity=base.complexity,
                    practical=self.practical(dataset_id),
                    thresholds=base.thresholds,
                )
        return self._assessments[key]

    def _compute_assessment(
        self, dataset_id: str, assess_unit: str
    ) -> BenchmarkAssessment:
        """Compute the a-priori assessment, persisting under the run lease.

        When the lease cannot be taken the assessment is still computed
        (the caller needs a value) but nothing is persisted or
        journalled, so the holder's artefacts are never interleaved with
        ours. A contended acquire re-checks the disk cache first — the
        previous holder probably just wrote the same assessment.
        """
        waited = self._acquire_lease(assess_unit)
        held = waited is not None
        try:
            if held and waited > 0:
                cached = self._load_assessment(dataset_id)
                if cached is not None:
                    self._mark_done(assess_unit)
                    return cached
            # Journal consult: recomputing a unit the journal claims
            # complete is a divergence worth surfacing.
            if self.journal is not None and self.journal.is_done(assess_unit):
                self._record_journal_divergence(assess_unit)
            with self.obs.span("assessment", dataset=dataset_id):
                with self._feature_scope():
                    computed = assess_benchmark(
                        self.task_for(dataset_id), practical=None
                    )
            if held:
                self._store_assessment(dataset_id, computed)
                self._mark_done(assess_unit)
            return computed
        finally:
            if held:
                self._release_lease()

    def linearity(self, dataset_id: str) -> dict[str, LinearityResult]:
        """Degree of linearity (Figure 1 / 4 bars) via the assessment cache."""
        return self.assessment(dataset_id, with_practical=False).linearity

    # -- a-priori assessment disk cache ------------------------------------

    def _assessment_path(self, dataset_id: str) -> Path | None:
        cache_path = self._cache_path(dataset_id)
        if cache_path is None:
            return None
        return cache_path.with_name("apriori_" + cache_path.name[6:])

    def _store_assessment(
        self, dataset_id: str, assessment: BenchmarkAssessment
    ) -> None:
        path = self._assessment_path(dataset_id)
        if path is None:
            return
        payload = {
            "task_name": assessment.task_name,
            "linearity": {
                name: {
                    "similarity": result.similarity,
                    "max_f1": result.max_f1,
                    "best_threshold": result.best_threshold,
                }
                for name, result in assessment.linearity.items()
            },
            "complexity": assessment.complexity.scores,
        }
        try:
            write_envelope(path, payload)
        except Exception as exc:
            self._record_persist_failure(f"assess:{dataset_id}", "cache", exc)

    def _load_assessment(self, dataset_id: str) -> BenchmarkAssessment | None:
        path = self._assessment_path(dataset_id)
        if path is None:
            return None
        try:
            read = read_cached_payload(path)
        except Exception as exc:
            self._record_cache_failure(
                f"assess:{dataset_id}", f"cache read failed: {exc}"
            )
            return None
        if read.error is not None:
            self._record_cache_failure(f"assess:{dataset_id}", read.error)
        if not read.hit:
            return None
        payload = read.payload
        assert isinstance(payload, dict)
        return BenchmarkAssessment(
            task_name=payload["task_name"],
            linearity={
                name: LinearityResult(
                    similarity=entry["similarity"],
                    max_f1=entry["max_f1"],
                    best_threshold=entry["best_threshold"],
                )
                for name, entry in payload["linearity"].items()
            },
            complexity=ComplexityProfile(scores=payload["complexity"]),
        )


def check_cache_dir_writable(cache_dir: Path | str) -> str | None:
    """Probe a cache directory; returns an error message or ``None`` if ok."""
    target = Path(cache_dir)
    try:
        target.mkdir(parents=True, exist_ok=True)
        probe = target / f".write_probe_{os.getpid()}"
        probe.write_text("", encoding="utf-8")
        probe.unlink()
    except OSError as exc:
        return f"cache directory {target} is not writable: {exc}"
    return None


def _sweep_job(
    dataset_id: str,
    size_factor: float,
    seed: int,
    policy: ExecutionPolicy,
) -> tuple[dict[str, MatcherResult], list[FailureRecord]]:
    """Worker-side unit of :meth:`ExperimentRunner.sweep_all`.

    Top-level (picklable). Resolves the task and runs the roster
    sequentially inside the worker — no nested pools — with every matcher
    under *policy*, and returns ``(results, failures)`` so degraded
    placeholders and their :class:`FailureRecord`\\ s marshal back to the
    parent. Cache and journal writes stay in the parent, keeping the
    journal single-writer.
    """
    # Mirror of the sequential sweep closure so the span set (and the
    # sweep.seconds timer) is identical for any worker count.
    with obs_module.span("sweep", dataset=dataset_id) as span:
        with obs_module.timed("sweep.seconds"):
            faults.fire(f"sweep:{dataset_id}")
            resolver = ExperimentRunner(
                size_factor=size_factor, seed=seed, cache_dir=None, policy=policy
            )
            failures: list[FailureRecord] = []
            results = evaluate_suite(
                resolver.task_for(dataset_id),
                seed=seed,
                policy=policy,
                failures=failures,
            )
        if any(result.degraded for result in results.values()):
            span.mark_degraded()
        return results, failures


_default_runner: ExperimentRunner | None = None


def default_runner() -> ExperimentRunner:
    """The process-wide runner at CI scale (created on first use)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner(size_factor=1.0, seed=0)
    return _default_runner


def _results_to_payload(results: dict[str, MatcherResult]) -> dict[str, object]:
    return {
        name: {
            "task": result.task,
            "precision": result.precision,
            "recall": result.recall,
            "f1": result.f1,
            "fit_seconds": result.fit_seconds,
            "predict_seconds": result.predict_seconds,
            "degraded": result.degraded,
        }
        for name, result in results.items()
    }


def _results_from_payload(payload: object) -> dict[str, MatcherResult]:
    if not isinstance(payload, dict):
        raise TypeError(f"suite cache payload must be a dict, got {type(payload)}")
    return {
        name: MatcherResult(
            matcher=name,
            task=entry["task"],
            precision=entry["precision"],
            recall=entry["recall"],
            f1=entry["f1"],
            fit_seconds=entry["fit_seconds"],
            predict_seconds=entry["predict_seconds"],
            degraded=bool(entry.get("degraded", False)),
        )
        for name, entry in payload.items()
    }
