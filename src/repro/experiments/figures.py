"""Builders for the figure series (Figures 1-6).

Figures are returned as mappings ``dataset -> series`` of named float
values — the exact numbers behind the paper's bar charts — so they can be
asserted on, rendered as text, or plotted by downstream users.
"""

from __future__ import annotations

from repro.core.complexity.profile import MEASURE_NAMES
from repro.datasets.registry import (
    ESTABLISHED_DATASET_IDS,
    NEW_BENCHMARK_LABELS,
    SOURCE_DATASET_IDS,
)
from repro.experiments.runner import ExperimentRunner

FigureSeries = dict[str, dict[str, float]]


def _linearity_series(
    runner: ExperimentRunner, dataset_ids: tuple[str, ...]
) -> FigureSeries:
    figure: FigureSeries = {}
    for dataset_id in dataset_ids:
        linearity = runner.linearity(dataset_id)
        label = NEW_BENCHMARK_LABELS.get(dataset_id, dataset_id)
        figure[label] = {
            "f1_cosine": linearity["cosine"].max_f1,
            "threshold_cosine": linearity["cosine"].best_threshold,
            "f1_jaccard": linearity["jaccard"].max_f1,
            "threshold_jaccard": linearity["jaccard"].best_threshold,
        }
    return figure


def _complexity_series(
    runner: ExperimentRunner, dataset_ids: tuple[str, ...]
) -> FigureSeries:
    figure: FigureSeries = {}
    for dataset_id in dataset_ids:
        profile = runner.assessment(dataset_id, with_practical=False).complexity
        label = NEW_BENCHMARK_LABELS.get(dataset_id, dataset_id)
        series = {name: profile[name] for name in MEASURE_NAMES}
        series["mean"] = profile.mean
        figure[label] = series
    return figure


def _practical_series(
    runner: ExperimentRunner, dataset_ids: tuple[str, ...]
) -> FigureSeries:
    figure: FigureSeries = {}
    if getattr(runner, "workers", 1) > 1:
        runner.sweep_all(dataset_ids)
    for dataset_id in dataset_ids:
        practical = runner.practical(dataset_id)
        label = NEW_BENCHMARK_LABELS.get(dataset_id, dataset_id)
        figure[label] = {
            "nlb": practical.non_linear_boost,
            "lbm": practical.learning_based_margin,
            "best_linear_f1": practical.best_linear_f1,
            "best_non_linear_f1": practical.best_non_linear_f1,
        }
    return figure


def figure1(runner: ExperimentRunner) -> FigureSeries:
    """Degree of linearity per established benchmark."""
    return _linearity_series(runner, ESTABLISHED_DATASET_IDS)


def figure2(runner: ExperimentRunner) -> FigureSeries:
    """Complexity measures per established benchmark."""
    return _complexity_series(runner, ESTABLISHED_DATASET_IDS)


def figure3(runner: ExperimentRunner) -> FigureSeries:
    """NLB and LBM per established benchmark."""
    return _practical_series(runner, ESTABLISHED_DATASET_IDS)


def figure4(runner: ExperimentRunner) -> FigureSeries:
    """Degree of linearity per new benchmark (Figure 4a of the paper)."""
    return _linearity_series(runner, SOURCE_DATASET_IDS)


def figure5(runner: ExperimentRunner) -> FigureSeries:
    """Complexity measures per new benchmark."""
    return _complexity_series(runner, SOURCE_DATASET_IDS)


def figure6(runner: ExperimentRunner) -> FigureSeries:
    """NLB and LBM per new benchmark.

    The paper's text reports these alongside Figure 5 ("Figure 5 reports
    the corresponding non-linear boost ... and learning-based margin");
    they get their own series here.
    """
    return _practical_series(runner, SOURCE_DATASET_IDS)
