"""Full experiment snapshot: every table and figure as one JSON document.

``take_snapshot`` runs (or loads from cache) all experiments of the
reproduction — Tables III-VII, Figures 1-6, and the paper-vs-measured
comparison — and returns them as a JSON-serializable dict. This is what
EXPERIMENTS.md records and what downstream tooling (plots, CI dashboards)
can consume without re-running anything.

The snapshot document also carries the run's ``failures`` (every
:class:`~repro.runtime.FailureRecord` the runner absorbed while degrading
gracefully), and ``save_snapshot`` writes atomically. Because the runner
journals and disk-caches every per-dataset unit, a snapshot interrupted
by a kill resumes from completed units when rerun with the same cache
directory.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import figures, tables
from repro.experiments.paper_comparison import compare_all
from repro.experiments.runner import ExperimentRunner
from repro.runtime import atomic_write_text


def take_snapshot(runner: ExperimentRunner) -> dict[str, object]:
    """Collect every experiment's data through *runner*."""
    table_entries = {}
    for name, builder in (
        ("table3", tables.table3),
        ("table4", tables.table4),
        ("table5", tables.table5),
        ("table6", tables.table6),
        ("table7", tables.table7),
    ):
        headers, rows = builder(runner)
        table_entries[name] = {"headers": headers, "rows": rows}

    figure_entries = {
        name: builder(runner)
        for name, builder in (
            ("fig1", figures.figure1),
            ("fig2", figures.figure2),
            ("fig3", figures.figure3),
            ("fig4", figures.figure4),
            ("fig5", figures.figure5),
            ("fig6", figures.figure6),
        )
    }

    established, new = compare_all(runner)
    comparisons = {
        "established": [vars(c) | {
            "paper_nlb": c.paper_nlb,
            "measured_nlb": c.measured_nlb,
            "verdict_agrees": c.verdict_agrees,
        } for c in established],
        "new": [vars(c) | {
            "paper_nlb": c.paper_nlb,
            "measured_nlb": c.measured_nlb,
            "verdict_agrees": c.verdict_agrees,
        } for c in new],
    }

    verdicts = {}
    for dataset_id in (
        *["Ds1", "Ds2", "Ds3", "Ds4", "Ds5", "Ds6", "Ds7",
          "Dd1", "Dd2", "Dd3", "Dd4", "Dt1", "Dt2"],
    ):
        assessment = runner.assessment(dataset_id, with_practical=True)
        verdicts[dataset_id] = assessment.summary()

    from repro.datasets.established import ESTABLISHED_ORDER, effective_scale

    return {
        "size_factor": runner.size_factor,
        # Scale provenance per dataset: tiny size factors are clamped by
        # the generation minimums, so the effective factor can exceed the
        # requested one (the "clamped" flag marks exactly when).
        "effective_scales": {
            dataset_id: effective_scale(dataset_id, runner.size_factor)
            for dataset_id in ESTABLISHED_ORDER
        },
        "seed": runner.seed,
        "tables": table_entries,
        "figures": figure_entries,
        "comparisons": comparisons,
        "verdicts_established": verdicts,
        "failures": [
            failure.to_dict() for failure in runner.failure_records()
        ],
        # Counters/gauges/timers accumulated while producing the snapshot
        # (cache hits, matcher timings, ...) — dashboards read them from
        # here instead of re-running anything.
        "metrics": runner.obs.snapshot(),
    }


def save_snapshot(runner: ExperimentRunner, path: Path | str) -> dict[str, object]:
    """Take a snapshot and atomically write it as JSON; returns the snapshot."""
    snapshot = take_snapshot(runner)
    atomic_write_text(Path(path), json.dumps(snapshot, indent=1))
    return snapshot


def sweep_state(
    runner: ExperimentRunner, dataset_ids: tuple[str, ...]
) -> dict[str, object]:
    """The *diffable* state of a sweep: scores and verdicts, no wall-clock.

    The comparison surface of :mod:`repro.runtime.chaos`'s campaign and
    crash-consistency checks. Per dataset it records each matcher's
    scores and degraded flag, the practical measures (NLB/LBM) when
    measured, and the practical verdict — but deliberately no timings,
    pids or trace ids, which legitimately differ between runs. Two runs
    of the same ``(datasets, scale, seed)`` must produce equal states
    regardless of faults survived, kills resumed, or cache state.
    """
    state: dict[str, object] = {"datasets": {}}
    for dataset_id in dataset_ids:
        results = runner.matcher_results(dataset_id)
        practical = runner.practical(dataset_id)
        measured = practical.is_measured
        state["datasets"][dataset_id] = {
            "results": {
                name: {
                    "f1": result.f1,
                    "precision": result.precision,
                    "recall": result.recall,
                    "degraded": result.degraded,
                }
                for name, result in sorted(results.items())
            },
            "measured": measured,
            "nlb": practical.non_linear_boost if measured else None,
            "lbm": practical.learning_based_margin if measured else None,
            "practical_challenging": (
                practical.is_challenging() if measured else None
            ),
            "journal_units": sorted(
                unit
                for unit in (
                    runner.journal.completed if runner.journal else ()
                )
                if unit == f"sweep:{dataset_id}"
            ),
        }
    return state
