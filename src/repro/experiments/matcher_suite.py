"""The full matcher roster of Tables IV and VI.

Per dataset the suite evaluates:

* the five DL-based matchers, each at its default epoch budget and at 40
  epochs (the paper's two settings; GNEM and HierMatcher default to 10),
  with EMTransformer in both checkpoint variants;
* the non-neural, non-linear matchers: Magellan with DT/LR/RF/SVM heads
  (sharing one feature extractor) and ZeroER;
* the six linear ESDE variants.

``family_of`` classifies a matcher name into ``"dl"`` / ``"ml"`` /
``"linear"`` — the three table sections — and drives the NLB split
(non-linear = dl + ml).
"""

from __future__ import annotations

from numpy.linalg import LinAlgError

from repro.data.task import MatchingTask
from repro.matchers.base import Matcher, MatcherResult
from repro.matchers.deep import (
    DeepMatcherNet,
    DittoNet,
    EMTransformerNet,
    GnemNet,
    HierMatcherNet,
)
from repro.matchers.esde import EsdeMatcher
from repro.matchers.features import MagellanFeatureExtractor
from repro.matchers.magellan import MAGELLAN_HEADS, MagellanMatcher
from repro.matchers.zeroer import ZeroERMatcher
from repro.runtime import ExecutionPolicy, FailureRecord
from repro.runtime import faults

#: Default epoch budget per DL method (the "(n)" of the paper's tables).
DEFAULT_EPOCHS: dict[str, int] = {
    "DeepMatcher": 15,
    "DITTO": 15,
    "EMTransformer": 15,
    "GNEM": 10,
    "HierMatcher": 10,
}

#: The paper's second epoch setting for every DL method.
LONG_EPOCHS = 40


def build_suite(task: MatchingTask, seed: int = 0) -> list[Matcher]:
    """Fresh matcher instances for one task, in table order."""
    suite: list[Matcher] = []
    for epochs in (DEFAULT_EPOCHS["DeepMatcher"], LONG_EPOCHS):
        suite.append(DeepMatcherNet(epochs=epochs, seed=seed))
    for epochs in (DEFAULT_EPOCHS["DITTO"], LONG_EPOCHS):
        suite.append(DittoNet(epochs=epochs, seed=seed))
    for variant in ("B", "R"):
        for epochs in (DEFAULT_EPOCHS["EMTransformer"], LONG_EPOCHS):
            suite.append(EMTransformerNet(variant=variant, epochs=epochs, seed=seed))
    for epochs in (DEFAULT_EPOCHS["GNEM"], LONG_EPOCHS):
        suite.append(GnemNet(epochs=epochs, seed=seed))
    for epochs in (DEFAULT_EPOCHS["HierMatcher"], LONG_EPOCHS):
        suite.append(HierMatcherNet(epochs=epochs, seed=seed))

    shared_extractor = MagellanFeatureExtractor(task.attributes)
    for head in MAGELLAN_HEADS:
        suite.append(MagellanMatcher(head=head, extractor=shared_extractor, seed=seed))
    suite.append(ZeroERMatcher(extractor=shared_extractor, seed=seed))

    for variant in ("SA", "SAQ", "SAS", "SB", "SBQ", "SBS"):
        suite.append(EsdeMatcher(variant))
    return suite


def family_of(matcher_name: str) -> str:
    """Table section of a matcher name: ``"dl"``, ``"ml"`` or ``"linear"``."""
    if matcher_name.endswith("-ESDE"):
        return "linear"
    if matcher_name.startswith(("Magellan", "ZeroER")):
        return "ml"
    return "dl"


#: Exceptions a matcher may legitimately raise on a degenerate task (e.g.
#: a single-class training split); the policy retries/records these.
MATCHER_ERRORS: tuple[type[BaseException], ...] = (
    ValueError,
    RuntimeError,
    LinAlgError,
)


def degraded_result(matcher_name: str, task_name: str) -> MatcherResult:
    """The zero-scored placeholder recorded for a failed matcher."""
    return MatcherResult(
        matcher=matcher_name,
        task=task_name,
        precision=0.0,
        recall=0.0,
        f1=0.0,
        fit_seconds=0.0,
        predict_seconds=0.0,
        degraded=True,
    )


def evaluate_suite(
    task: MatchingTask,
    seed: int = 0,
    policy: ExecutionPolicy | None = None,
    failures: list[FailureRecord] | None = None,
) -> dict[str, MatcherResult]:
    """Evaluate the whole roster on one task (name -> result).

    Each matcher runs under *policy* (retries / backoff / deadline;
    defaults to a single attempt). A matcher that still fails — a
    degenerate single-class training split, an injected fault, a tripped
    deadline — is recorded as a :func:`degraded_result` rather than
    aborting the sweep: the analogue of the paper's "insufficient memory"
    hyphens, but with the cause preserved as a :class:`FailureRecord`
    appended to *failures* (and to the process-wide registry).
    """
    if policy is None:
        policy = ExecutionPolicy(
            max_attempts=1, backoff_base=0.0, retry_on=MATCHER_ERRORS
        )
    results: dict[str, MatcherResult] = {}
    for matcher in build_suite(task, seed=seed):

        def unit(matcher: Matcher = matcher) -> MatcherResult:
            faults.fire(f"matcher:{matcher.name}")
            return matcher.evaluate(task)

        outcome = policy.execute(
            unit, unit_id=f"{task.name}/{matcher.name}", phase="matcher"
        )
        if outcome.ok:
            results[matcher.name] = outcome.value
        else:
            results[matcher.name] = degraded_result(matcher.name, task.name)
            assert outcome.failure is not None
            _failures.append(outcome.failure)
            if failures is not None:
                failures.append(outcome.failure)
    return results


#: Matcher failures of the current process — the harness surfaces them
#: instead of silently reporting zeros.
_failures: list[FailureRecord] = []


def recorded_failures() -> list[FailureRecord]:
    """Matcher failures recorded by :func:`evaluate_suite` so far."""
    return list(_failures)


def linear_f1_scores(results: dict[str, MatcherResult]) -> dict[str, float]:
    """F1 of the linear matchers only."""
    return {
        name: result.f1
        for name, result in results.items()
        if family_of(name) == "linear"
    }


def non_linear_f1_scores(results: dict[str, MatcherResult]) -> dict[str, float]:
    """F1 of the ML- and DL-based (non-linear) matchers."""
    return {
        name: result.f1
        for name, result in results.items()
        if family_of(name) != "linear"
    }
