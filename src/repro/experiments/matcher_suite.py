"""The full matcher roster of Tables IV and VI.

Per dataset the suite evaluates:

* the five DL-based matchers, each at its default epoch budget and at 40
  epochs (the paper's two settings; GNEM and HierMatcher default to 10),
  with EMTransformer in both checkpoint variants;
* the non-neural, non-linear matchers: Magellan with DT/LR/RF/SVM heads
  (sharing one feature extractor) and ZeroER;
* the six linear ESDE variants.

``family_of`` classifies a matcher name into ``"dl"`` / ``"ml"`` /
``"linear"`` — the three table sections — and drives the NLB split
(non-linear = dl + ml).
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from functools import partial

from numpy.linalg import LinAlgError

from repro.core.practical import (
    PracticalMeasures,
    practical_measures,
    unmeasured_practical,
)
from repro.data.task import MatchingTask
from repro.matchers.base import Matcher, MatcherResult
from repro.matchers.deep import (
    DeepMatcherNet,
    DittoNet,
    EMTransformerNet,
    GnemNet,
    HierMatcherNet,
)
from repro.matchers.esde import EsdeMatcher
from repro.matchers.features import MagellanFeatureExtractor
from repro.matchers.magellan import MAGELLAN_HEADS, MagellanMatcher
from repro.matchers.zeroer import ZeroERMatcher
from repro import obs
from repro.runtime import (
    BreakerRegistry,
    ExecutionOutcome,
    ExecutionPolicy,
    FailureRecord,
)
from repro.runtime import faults
from repro.runtime.guard import AdaptiveDeadlineModel, ResourceGuard
from repro.runtime.parallel import ParallelScheduler, WorkUnit
from repro.runtime.registry import (  # re-exported for back-compat
    clear_recorded_failures,
    record_failure,
    recorded_failures,
)
from repro.text.feature_store import store_for_task

#: Default epoch budget per DL method (the "(n)" of the paper's tables).
DEFAULT_EPOCHS: dict[str, int] = {
    "DeepMatcher": 15,
    "DITTO": 15,
    "EMTransformer": 15,
    "GNEM": 10,
    "HierMatcher": 10,
}

#: The paper's second epoch setting for every DL method.
LONG_EPOCHS = 40


def build_suite(task: MatchingTask, seed: int = 0) -> list[Matcher]:
    """Fresh matcher instances for one task, in table order."""
    suite: list[Matcher] = []
    for epochs in (DEFAULT_EPOCHS["DeepMatcher"], LONG_EPOCHS):
        suite.append(DeepMatcherNet(epochs=epochs, seed=seed))
    for epochs in (DEFAULT_EPOCHS["DITTO"], LONG_EPOCHS):
        suite.append(DittoNet(epochs=epochs, seed=seed))
    for variant in ("B", "R"):
        for epochs in (DEFAULT_EPOCHS["EMTransformer"], LONG_EPOCHS):
            suite.append(EMTransformerNet(variant=variant, epochs=epochs, seed=seed))
    for epochs in (DEFAULT_EPOCHS["GNEM"], LONG_EPOCHS):
        suite.append(GnemNet(epochs=epochs, seed=seed))
    for epochs in (DEFAULT_EPOCHS["HierMatcher"], LONG_EPOCHS):
        suite.append(HierMatcherNet(epochs=epochs, seed=seed))

    shared_extractor = MagellanFeatureExtractor(
        task.attributes, store=store_for_task(task)
    )
    for head in MAGELLAN_HEADS:
        suite.append(MagellanMatcher(head=head, extractor=shared_extractor, seed=seed))
    suite.append(ZeroERMatcher(extractor=shared_extractor, seed=seed))

    for variant in ("SA", "SAQ", "SAS", "SB", "SBQ", "SBS"):
        suite.append(EsdeMatcher(variant))
    return suite


def family_of(matcher_name: str) -> str:
    """Table section of a matcher name: ``"dl"``, ``"ml"`` or ``"linear"``."""
    if matcher_name.endswith("-ESDE"):
        return "linear"
    if matcher_name.startswith(("Magellan", "ZeroER")):
        return "ml"
    return "dl"


#: Exceptions a matcher may legitimately raise on a degenerate task (e.g.
#: a single-class training split); the policy retries/records these.
MATCHER_ERRORS: tuple[type[BaseException], ...] = (
    ValueError,
    RuntimeError,
    LinAlgError,
)


def degraded_result(matcher_name: str, task_name: str) -> MatcherResult:
    """The zero-scored placeholder recorded for a failed matcher."""
    return MatcherResult(
        matcher=matcher_name,
        task=task_name,
        precision=0.0,
        recall=0.0,
        f1=0.0,
        fit_seconds=0.0,
        predict_seconds=0.0,
        degraded=True,
    )


def build_matcher(task: MatchingTask, matcher_spec: str, seed: int = 0) -> Matcher:
    """One fresh matcher of the roster by table name (e.g. ``"DITTO (15)"``)."""
    for matcher in build_suite(task, seed=seed):
        if matcher.name == matcher_spec:
            return matcher
    raise KeyError(f"unknown matcher spec {matcher_spec!r}")


def _evaluate_matcher(matcher: Matcher, task: MatchingTask) -> MatcherResult:
    """Fire the matcher's fault site, then evaluate (policy-wrapped unit).

    Shared by the sequential and the pooled path, so every matcher
    evaluation opens exactly one ``matcher`` trace span regardless of the
    worker count (the span of a pooled unit marshals back to the parent).
    """
    with obs.span("matcher", matcher=matcher.name, dataset=task.name):
        faults.fire(f"matcher:{matcher.name}")
        return matcher.evaluate(task)


def _evaluate_guarded(
    matcher: Matcher,
    task: MatchingTask,
    guard: ResourceGuard | None,
    unit_id: str,
) -> MatcherResult:
    """Sequential unit body: budget checkpoint, then the matcher."""
    if guard is not None:
        guard.checkpoint(unit_id)
    return _evaluate_matcher(matcher, task)


def _evaluate_matcher_spec(
    task: MatchingTask, matcher_spec: str, seed: int
) -> MatcherResult:
    """Worker-side unit: rebuild one matcher from its spec and evaluate.

    Top-level so a process-pool scheduler can pickle it; the sequential
    path uses pre-built matcher instances instead (shared Magellan
    feature extractor), which produces identical scores.
    """
    return _evaluate_matcher(build_matcher(task, matcher_spec, seed), task)


def _with_breakers(
    policy: ExecutionPolicy, breakers: BreakerRegistry | None
) -> ExecutionPolicy:
    """Attach *breakers* to *policy* unless it already carries a registry."""
    if breakers is None or policy.breakers is not None:
        return policy
    return dataclass_replace(policy, breakers=breakers)


def run_one_matcher(
    task: MatchingTask,
    matcher_spec: str,
    seed: int = 0,
    policy: ExecutionPolicy | None = None,
    breakers: BreakerRegistry | None = None,
) -> ExecutionOutcome:
    """Evaluate one matcher of the roster under *policy*, as an outcome.

    The per-matcher unit of work behind both the sequential sweep and the
    parallel scheduler: picklable, seeded only by ``(seed, unit_id)``, and
    never raising — failures come back as :class:`FailureRecord` data.
    With *breakers*, the unit's circuit breaker (keyed by
    ``"<task>/<matcher>"``) is consulted first: an open breaker
    short-circuits to a ``CircuitOpen`` failure without evaluating.
    """
    if policy is None:
        policy = ExecutionPolicy(
            max_attempts=1, backoff_base=0.0, retry_on=MATCHER_ERRORS
        )
    policy = _with_breakers(policy, breakers)
    return policy.execute(
        partial(_evaluate_matcher_spec, task, matcher_spec, seed),
        unit_id=f"{task.name}/{matcher_spec}",
        phase="matcher",
    )


def evaluate_suite(
    task: MatchingTask,
    seed: int = 0,
    policy: ExecutionPolicy | None = None,
    failures: list[FailureRecord] | None = None,
    scheduler: ParallelScheduler | None = None,
    breakers: BreakerRegistry | None = None,
    guard: "ResourceGuard | None" = None,
    deadlines: "AdaptiveDeadlineModel | None" = None,
) -> dict[str, MatcherResult]:
    """Evaluate the whole roster on one task (name -> result).

    Each matcher runs under *policy* (retries / backoff / deadline;
    defaults to a single attempt). A matcher that still fails — a
    degenerate single-class training split, an injected fault, a tripped
    deadline — is recorded as a :func:`degraded_result` rather than
    aborting the sweep: the analogue of the paper's "insufficient memory"
    hyphens, but with the cause preserved as a :class:`FailureRecord`
    appended to *failures* (or, when no caller list is given, to the
    process-wide registry behind :func:`recorded_failures`).

    With a *scheduler* of ``workers > 1`` the per-matcher units fan out
    across processes; results are merged in roster order and each unit
    still runs under *policy* inside its worker, so scores and failure
    records are identical to the sequential path.

    *breakers* (or a registry already on *policy*) arms per-unit circuit
    breakers: a ``(dataset, matcher)`` unit that has failed K consecutive
    times short-circuits to its degraded placeholder with a
    ``CircuitOpen`` failure record instead of burning retries. Breaker
    state is per-process; pooled workers each keep their own counts.

    *guard* (a :class:`repro.runtime.guard.ResourceGuard`) runs a budget
    checkpoint before each sequential matcher: a shed unit becomes a
    ``BudgetExceeded`` failure record, not a crash. *deadlines* (an
    :class:`~repro.runtime.guard.AdaptiveDeadlineModel`) replaces the
    policy's fixed ``deadline_seconds`` for the ``matcher`` phase once it
    has learned enough samples, and is fed each healthy duration.
    """
    if policy is None:
        policy = ExecutionPolicy(
            max_attempts=1, backoff_base=0.0, retry_on=MATCHER_ERRORS
        )
    policy = _with_breakers(policy, breakers)

    matchers = build_suite(task, seed=seed)
    if scheduler is not None and scheduler.workers > 1:
        units = [
            WorkUnit(
                unit_id=f"{task.name}/{matcher.name}",
                fn=_evaluate_matcher_spec,
                args=(task, matcher.name, seed),
                phase="matcher",
            )
            for matcher in matchers
        ]
        outcomes = scheduler.run(units, policy=policy).outcomes
    else:
        unit_policy = policy
        if deadlines is not None:
            adaptive = deadlines.learned_deadline_for("matcher")
            if adaptive is not None:
                unit_policy = dataclass_replace(
                    policy, deadline_seconds=adaptive
                )
        outcome_list = []
        for matcher in matchers:
            unit_id = f"{task.name}/{matcher.name}"
            outcome = unit_policy.execute(
                partial(
                    _evaluate_guarded, matcher, task, guard, unit_id
                ),
                unit_id=unit_id,
                phase="matcher",
            )
            if outcome.ok and deadlines is not None:
                deadlines.observe(
                    "matcher", outcome.value.fit_seconds
                    + outcome.value.predict_seconds,
                )
            outcome_list.append(outcome)
        outcomes = tuple(outcome_list)

    results: dict[str, MatcherResult] = {}
    for matcher, outcome in zip(matchers, outcomes):
        if outcome.ok:
            results[matcher.name] = outcome.value
        else:
            results[matcher.name] = degraded_result(matcher.name, task.name)
            assert outcome.failure is not None
            if failures is not None:
                failures.append(outcome.failure)
            else:
                # Fallback: the process-wide registry in
                # :mod:`repro.runtime.registry` (its lifecycle —
                # ``clear_recorded_failures`` — lives there too; the names
                # stay importable from this module for back-compat).
                record_failure(outcome.failure)
    return results


def linear_f1_scores(results: dict[str, MatcherResult]) -> dict[str, float]:
    """F1 of the linear matchers only (degraded placeholders excluded)."""
    return {
        name: result.f1
        for name, result in results.items()
        if family_of(name) == "linear" and not result.degraded
    }


def non_linear_f1_scores(results: dict[str, MatcherResult]) -> dict[str, float]:
    """F1 of the non-linear (ML + DL) matchers, degraded ones excluded."""
    return {
        name: result.f1
        for name, result in results.items()
        if family_of(name) != "linear" and not result.degraded
    }


def practical_from_results(
    results: dict[str, MatcherResult],
) -> PracticalMeasures:
    """NLB and LBM for one sweep, robust to degraded results.

    Degraded placeholders are failures, not measurements: their forced
    0.0 must neither win nor lose a family, so they are excluded. If an
    entire family is degraded (or the sweep produced nothing at all) the
    measures come back as NaN — :func:`unmeasured_practical` — which the
    assessment layer treats as *unknown*, never as evidence of easiness.
    """
    linear = linear_f1_scores(results)
    non_linear = non_linear_f1_scores(results)
    if not linear or not non_linear:
        return unmeasured_practical()
    return practical_measures(non_linear, linear)
