"""The full matcher roster of Tables IV and VI.

Per dataset the suite evaluates:

* the five DL-based matchers, each at its default epoch budget and at 40
  epochs (the paper's two settings; GNEM and HierMatcher default to 10),
  with EMTransformer in both checkpoint variants;
* the non-neural, non-linear matchers: Magellan with DT/LR/RF/SVM heads
  (sharing one feature extractor) and ZeroER;
* the six linear ESDE variants.

``family_of`` classifies a matcher name into ``"dl"`` / ``"ml"`` /
``"linear"`` — the three table sections — and drives the NLB split
(non-linear = dl + ml).
"""

from __future__ import annotations

from numpy.linalg import LinAlgError

from repro.data.task import MatchingTask
from repro.matchers.base import Matcher, MatcherResult
from repro.matchers.deep import (
    DeepMatcherNet,
    DittoNet,
    EMTransformerNet,
    GnemNet,
    HierMatcherNet,
)
from repro.matchers.esde import EsdeMatcher
from repro.matchers.features import MagellanFeatureExtractor
from repro.matchers.magellan import MAGELLAN_HEADS, MagellanMatcher
from repro.matchers.zeroer import ZeroERMatcher

#: Default epoch budget per DL method (the "(n)" of the paper's tables).
DEFAULT_EPOCHS: dict[str, int] = {
    "DeepMatcher": 15,
    "DITTO": 15,
    "EMTransformer": 15,
    "GNEM": 10,
    "HierMatcher": 10,
}

#: The paper's second epoch setting for every DL method.
LONG_EPOCHS = 40


def build_suite(task: MatchingTask, seed: int = 0) -> list[Matcher]:
    """Fresh matcher instances for one task, in table order."""
    suite: list[Matcher] = []
    for epochs in (DEFAULT_EPOCHS["DeepMatcher"], LONG_EPOCHS):
        suite.append(DeepMatcherNet(epochs=epochs, seed=seed))
    for epochs in (DEFAULT_EPOCHS["DITTO"], LONG_EPOCHS):
        suite.append(DittoNet(epochs=epochs, seed=seed))
    for variant in ("B", "R"):
        for epochs in (DEFAULT_EPOCHS["EMTransformer"], LONG_EPOCHS):
            suite.append(EMTransformerNet(variant=variant, epochs=epochs, seed=seed))
    for epochs in (DEFAULT_EPOCHS["GNEM"], LONG_EPOCHS):
        suite.append(GnemNet(epochs=epochs, seed=seed))
    for epochs in (DEFAULT_EPOCHS["HierMatcher"], LONG_EPOCHS):
        suite.append(HierMatcherNet(epochs=epochs, seed=seed))

    shared_extractor = MagellanFeatureExtractor(task.attributes)
    for head in MAGELLAN_HEADS:
        suite.append(MagellanMatcher(head=head, extractor=shared_extractor, seed=seed))
    suite.append(ZeroERMatcher(extractor=shared_extractor, seed=seed))

    for variant in ("SA", "SAQ", "SAS", "SB", "SBQ", "SBS"):
        suite.append(EsdeMatcher(variant))
    return suite


def family_of(matcher_name: str) -> str:
    """Table section of a matcher name: ``"dl"``, ``"ml"`` or ``"linear"``."""
    if matcher_name.endswith("-ESDE"):
        return "linear"
    if matcher_name.startswith(("Magellan", "ZeroER")):
        return "ml"
    return "dl"


def evaluate_suite(
    task: MatchingTask, seed: int = 0
) -> dict[str, MatcherResult]:
    """Evaluate the whole roster on one task (name -> result).

    A matcher that fails (e.g. a degenerate single-class training split)
    is recorded with F1 = 0 rather than aborting the sweep — the analogue of
    the paper's "insufficient memory" hyphens.
    """
    results: dict[str, MatcherResult] = {}
    for matcher in build_suite(task, seed=seed):
        try:
            results[matcher.name] = matcher.evaluate(task)
        except (ValueError, RuntimeError, LinAlgError) as error:
            results[matcher.name] = MatcherResult(
                matcher=matcher.name,
                task=task.name,
                precision=0.0,
                recall=0.0,
                f1=0.0,
                fit_seconds=0.0,
                predict_seconds=0.0,
            )
            _failures.append((task.name, matcher.name, repr(error)))
    return results


#: Failed (task, matcher, error) triples of the current process — the
#: harness surfaces them instead of silently reporting zeros.
_failures: list[tuple[str, str, str]] = []


def recorded_failures() -> list[tuple[str, str, str]]:
    """Matcher failures recorded by :func:`evaluate_suite` so far."""
    return list(_failures)


def linear_f1_scores(results: dict[str, MatcherResult]) -> dict[str, float]:
    """F1 of the linear matchers only."""
    return {
        name: result.f1
        for name, result in results.items()
        if family_of(name) == "linear"
    }


def non_linear_f1_scores(results: dict[str, MatcherResult]) -> dict[str, float]:
    """F1 of the ML- and DL-based (non-linear) matchers."""
    return {
        name: result.f1
        for name, result in results.items()
        if family_of(name) != "linear"
    }
