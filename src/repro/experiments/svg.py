"""Dependency-free SVG bar charts for the paper's figures.

matplotlib is unavailable in the reproduction environment, so figures are
rendered as hand-built SVG: grouped bar charts with axes, gridlines and a
legend — enough to eyeball Figure 1-6 shapes in a browser. The renderer is
deliberately small and deterministic (no randomness, no system fonts
queried) so outputs are stable across runs and testable as text.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.experiments.figures import FigureSeries

#: Default bar fill colours, cycled per series.
PALETTE: tuple[str, ...] = (
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4",
    "#8c613c", "#dc7ec0", "#797979",
)


def _escape(text: str) -> str:
    return html.escape(text, quote=True)


class SvgBarChart:
    """A grouped vertical bar chart.

    ``figure`` maps group label (dataset) -> {series name -> value}; all
    values must lie in [0, value_max]. Series order follows the first
    group's insertion order; every group must provide the same series.
    """

    def __init__(
        self,
        figure: FigureSeries,
        title: str = "",
        value_max: float = 1.0,
        width: int = 900,
        height: int = 360,
        series: tuple[str, ...] | None = None,
    ) -> None:
        if not figure:
            raise ValueError("cannot chart an empty figure")
        if value_max <= 0:
            raise ValueError(f"value_max must be > 0, got {value_max}")
        self.figure = figure
        self.title = title
        self.value_max = value_max
        self.width = width
        self.height = height
        first = next(iter(figure.values()))
        self.series = series if series is not None else tuple(first)
        for label, values in figure.items():
            missing = set(self.series) - set(values)
            if missing:
                raise ValueError(f"group {label!r} lacks series {sorted(missing)}")

    def render(self) -> str:
        """The complete SVG document as a string."""
        margin_left, margin_right = 50, 20
        margin_top, margin_bottom = 40, 60
        plot_width = self.width - margin_left - margin_right
        plot_height = self.height - margin_top - margin_bottom
        groups = list(self.figure)
        n_groups = len(groups)
        n_series = len(self.series)
        group_width = plot_width / n_groups
        bar_width = max(1.0, group_width * 0.8 / max(1, n_series))

        parts: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
        ]
        if self.title:
            parts.append(
                f'<text x="{self.width / 2:.1f}" y="20" text-anchor="middle" '
                f'font-size="15" font-family="sans-serif">'
                f"{_escape(self.title)}</text>"
            )

        # Horizontal gridlines + y labels at quarter steps.
        for step in range(5):
            fraction = step / 4
            y = margin_top + plot_height * (1.0 - fraction)
            parts.append(
                f'<line x1="{margin_left}" y1="{y:.1f}" '
                f'x2="{self.width - margin_right}" y2="{y:.1f}" '
                f'stroke="#dddddd" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{margin_left - 6}" y="{y + 4:.1f}" text-anchor="end" '
                f'font-size="10" font-family="sans-serif">'
                f"{fraction * self.value_max:.2f}</text>"
            )

        # Bars.
        for group_index, group in enumerate(groups):
            values = self.figure[group]
            group_x = margin_left + group_index * group_width + group_width * 0.1
            for series_index, name in enumerate(self.series):
                value = max(0.0, min(values[name], self.value_max))
                bar_height = plot_height * value / self.value_max
                x = group_x + series_index * bar_width
                y = margin_top + plot_height - bar_height
                colour = PALETTE[series_index % len(PALETTE)]
                parts.append(
                    f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_width:.1f}" '
                    f'height="{bar_height:.1f}" fill="{colour}">'
                    f"<title>{_escape(group)} {_escape(name)}: {values[name]:.3f}"
                    f"</title></rect>"
                )
            label_x = margin_left + group_index * group_width + group_width / 2
            parts.append(
                f'<text x="{label_x:.1f}" y="{self.height - margin_bottom + 16}" '
                f'text-anchor="middle" font-size="11" font-family="sans-serif">'
                f"{_escape(group)}</text>"
            )

        # Legend.
        legend_x = margin_left
        legend_y = self.height - 24
        for series_index, name in enumerate(self.series):
            colour = PALETTE[series_index % len(PALETTE)]
            parts.append(
                f'<rect x="{legend_x}" y="{legend_y - 9}" width="10" height="10" '
                f'fill="{colour}"/>'
            )
            parts.append(
                f'<text x="{legend_x + 14}" y="{legend_y}" font-size="11" '
                f'font-family="sans-serif">{_escape(name)}</text>'
            )
            legend_x += 14 + 8 * len(name) + 24
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: Path | str) -> None:
        """Write the SVG document to *path*."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.render(), encoding="utf-8")


def save_figure_svg(
    figure: FigureSeries,
    path: Path | str,
    title: str = "",
    series: tuple[str, ...] | None = None,
) -> None:
    """Convenience wrapper: chart *figure* and save it."""
    SvgBarChart(figure, title=title, series=series).save(path)
