"""Seed-stability analysis for the stochastic pipeline stages.

DeepBlocker is stochastic (autoencoder initialization), so "the performance
reported [in Table V] corresponds to the average after 10 repetitions"
(Section VI). This module reproduces that protocol: repeat the tuned
blocking across seeds and report mean/std of PC, PQ and |C| — plus the same
treatment for any seeded matcher, since the deep matchers' minibatch order
and initialization are seeded too.
"""

from __future__ import annotations

import statistics
from collections.abc import Callable
from dataclasses import dataclass

from repro.blocking.tuning import DEFAULT_K_LADDER, tune_deepblocker
from repro.data.task import MatchingTask
from repro.datasets.generator import SourcePair
from repro.matchers.base import Matcher


@dataclass(frozen=True)
class StabilitySummary:
    """Mean/std/min/max of one metric across repetitions."""

    metric: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"no values recorded for {self.metric!r}")

    @property
    def mean(self) -> float:
        return statistics.fmean(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        return statistics.stdev(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    def describe(self) -> str:
        return (
            f"{self.metric}: {self.mean:.3f} +/- {self.std:.3f} "
            f"[{self.minimum:.3f}, {self.maximum:.3f}] over {len(self.values)} runs"
        )


def blocking_stability(
    sources: SourcePair,
    repetitions: int = 10,
    recall_target: float = 0.9,
    k_ladder: tuple[int, ...] = DEFAULT_K_LADDER,
    base_seed: int = 0,
) -> dict[str, StabilitySummary]:
    """The paper's 10-repetition protocol for tuned DeepBlocker.

    Returns summaries for ``pair_completeness``, ``pairs_quality`` and
    ``n_candidates`` across ``repetitions`` differently-seeded tuning runs.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    pc_values: list[float] = []
    pq_values: list[float] = []
    candidate_counts: list[float] = []
    for repetition in range(repetitions):
        tuned = tune_deepblocker(
            sources,
            recall_target=recall_target,
            k_ladder=k_ladder,
            seed=base_seed + repetition,
        )
        pc_values.append(tuned.pair_completeness)
        pq_values.append(tuned.pairs_quality)
        candidate_counts.append(float(tuned.result.n_candidates))
    return {
        "pair_completeness": StabilitySummary("pair_completeness", tuple(pc_values)),
        "pairs_quality": StabilitySummary("pairs_quality", tuple(pq_values)),
        "n_candidates": StabilitySummary("n_candidates", tuple(candidate_counts)),
    }


def ann_stability(
    sources: SourcePair,
    repetitions: int = 10,
    recall_target: float = 0.9,
    base_seed: int = 0,
) -> dict[str, StabilitySummary]:
    """The same repetition protocol for the tuned ANN (LSH) blocker.

    MinHash is stochastic in its hash family, so the seed plays the role
    the autoencoder initialization plays for DeepBlocker: each repetition
    re-tunes with a different hash family and the summaries show how
    sensitive PC/PQ/|C| are to that draw (for a fixed seed the blocker
    itself is bit-deterministic).
    """
    from repro.blocking.ann import tune_ann

    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    pc_values: list[float] = []
    pq_values: list[float] = []
    candidate_counts: list[float] = []
    for repetition in range(repetitions):
        tuned = tune_ann(
            sources,
            recall_target=recall_target,
            seed=base_seed + repetition,
        )
        pc_values.append(tuned.pair_completeness)
        pq_values.append(tuned.pairs_quality)
        candidate_counts.append(float(tuned.result.n_candidates))
    return {
        "pair_completeness": StabilitySummary("pair_completeness", tuple(pc_values)),
        "pairs_quality": StabilitySummary("pairs_quality", tuple(pq_values)),
        "n_candidates": StabilitySummary("n_candidates", tuple(candidate_counts)),
    }


def matcher_stability(
    matcher_factory: Callable[[int], Matcher],
    task: MatchingTask,
    repetitions: int = 5,
    base_seed: int = 0,
) -> StabilitySummary:
    """Test-F1 stability of a seeded matcher across repetitions.

    ``matcher_factory`` receives a seed and returns a fresh matcher.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    f1_values = tuple(
        matcher_factory(base_seed + repetition).evaluate(task).f1
        for repetition in range(repetitions)
    )
    return StabilitySummary("f1", f1_values)
