"""Experiment harness: regenerate every table and figure of the paper.

:mod:`repro.experiments.runner` orchestrates and caches everything; the
``tables`` and ``figures`` modules turn cached results into the paper's
tables (III-VII) and figure series (1-6); ``report`` renders them as
aligned text. Each experiment has a pytest-benchmark wrapper under
``benchmarks/``.
"""

from repro.experiments.matcher_suite import (
    build_suite,
    evaluate_suite,
    family_of,
    linear_f1_scores,
    non_linear_f1_scores,
)
from repro.experiments.runner import ExperimentRunner, default_runner

__all__ = [
    "ExperimentRunner",
    "build_suite",
    "default_runner",
    "evaluate_suite",
    "family_of",
    "linear_f1_scores",
    "non_linear_f1_scores",
]
