"""Epoch learning curves for the deep matchers.

Section V-B: "the number of epochs is probably the most important
hyperparameter for most DL-based matching algorithms", which is why every
table reports two epoch budgets. This module extracts the per-epoch
validation-F1 curve a deep matcher records during training, so the epoch
sensitivity can be inspected directly instead of through two snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.task import MatchingTask
from repro.matchers.deep.base import DeepMatcherBase
from repro.ml.metrics import f1_score


@dataclass(frozen=True)
class LearningCurve:
    """Per-epoch validation F1 plus the final test F1 of one training run."""

    matcher: str
    task: str
    validation_f1: tuple[float, ...]
    test_f1: float

    @property
    def best_epoch(self) -> int:
        """1-based epoch whose validation F1 the model selection kept."""
        best = max(self.validation_f1)
        return self.validation_f1.index(best) + 1

    @property
    def plateau_epoch(self) -> int:
        """First 1-based epoch within 1% F1 of the eventual best."""
        best = max(self.validation_f1)
        for epoch, value in enumerate(self.validation_f1, start=1):
            if value >= best - 0.01:
                return epoch
        return len(self.validation_f1)


def learning_curve(matcher: DeepMatcherBase, task: MatchingTask) -> LearningCurve:
    """Train *matcher* on *task* and return its validation-F1 trajectory.

    Relies on the MLP head's validation-history recording, which every deep
    matcher's training loop populates (the paper's model-selection
    protocol).
    """
    matcher.fit(task)
    assert matcher._head is not None
    history = tuple(matcher._head.validation_f1_history_)
    if not history:
        raise RuntimeError(
            f"{matcher.name} recorded no validation history; was the task's "
            "validation set empty?"
        )
    predictions = matcher.predict(task.testing)
    return LearningCurve(
        matcher=matcher.name,
        task=task.name,
        validation_f1=history,
        test_f1=f1_score(task.testing.labels, predictions),
    )
