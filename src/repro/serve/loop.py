"""The ``python -m repro serve`` request loop: JSONL in, JSONL out.

One JSON object per line on the input stream, one JSON response per line
on the output stream. Operations:

* ``{"op": "add", "records": [...], "id": "a1"}`` — append records; the
  optional ``id`` makes the add idempotent across crash/restart (see
  below).
* ``{"op": "query", "record": {...}, "k": 5}`` — match one record.
* ``{"op": "query_batch", "records": [...], "k": 5}`` — match a batch
  through one coalesced predict call.
* ``{"op": "stats"}`` — session summary with per-phase latency
  histograms (p50/p99 for block/extract/predict).
* ``{"op": "snapshot"}`` — persist the session now (requires a state
  directory).
* ``{"op": "shutdown"}`` — drain and exit.

Every response carries ``"ok"``; failures answer the structured error
shape of :mod:`repro.serve.protocol` (``{"ok": false, "error": "<code>",
"detail": ...}``) and the loop keeps serving. A malformed or torn input
line is a ``bad_request`` response plus a ``serve.bad_request`` counter,
never an unhandled exception; the same parser backs the socket front end
(:mod:`repro.serve.frontend`).

**Durability.** With ``--state DIR`` the loop holds a
:class:`~repro.runtime.guard.RunLease` on the directory, snapshots the
session to ``session.json`` (every ``--snapshot-every`` added records,
on the ``snapshot`` op, and at drain) and journals add request ids into
``serve.journal`` — *only once they are covered by a snapshot*, so a
journaled add is always in the snapshot it survives with. On restart a
replayed add is either journal-skipped (snapshotted before the crash) or
re-applied; records already present are silently deduplicated, so the
add/crash/replay cycle is exactly-once.

**Drain.** SIGTERM stops intake and finishes the requests already read;
the ``shutdown`` op stops immediately after its own response. Either
way the loop emits a final ``drained`` event with the session stats,
snapshots, releases the lease and exits 0. Fault injection hooks
the top of every request at site ``serve:request``.
"""

from __future__ import annotations

import json
import queue
import signal
import sys
import threading
from pathlib import Path
from typing import IO

from repro import obs
from repro.data.records import Record
from repro.runtime import faults
from repro.runtime.guard import RunLease
from repro.runtime.journal import CheckpointJournal
from repro.serve.protocol import (
    BadRequest,
    bad_request_response,
    error_response,
    parse_request,
)
from repro.serve.session import MatcherSession

#: File names inside a ``--state`` directory.
SNAPSHOT_NAME = "session.json"
JOURNAL_NAME = "serve.journal"


def _parse_record(entry: dict) -> Record:
    return Record(
        str(entry["record_id"]),
        str(entry.get("source", "stream")),
        {str(k): str(v) for k, v in dict(entry.get("values", {})).items()},
    )


def parse_record_payload(entry: dict) -> Record:
    """One wire-format record payload → a :class:`Record` (shared parser)."""
    return _parse_record(entry)


class ServeLoop:
    """Binds a :class:`MatcherSession` to a JSONL request/response stream."""

    def __init__(
        self,
        session: MatcherSession,
        *,
        state_dir: Path | str | None = None,
        snapshot_every: int = 0,
        poll_seconds: float = 0.1,
    ) -> None:
        if snapshot_every < 0:
            raise ValueError(
                f"snapshot_every must be >= 0, got {snapshot_every}"
            )
        self.session = session
        self.snapshot_every = snapshot_every
        self.poll_seconds = poll_seconds
        self.draining = threading.Event()
        self._lease: RunLease | None = None
        self._journal: CheckpointJournal | None = None
        self._snapshot_path: Path | None = None
        self._pending_add_ids: list[str] = []
        self._adds_since_snapshot = 0
        if state_dir is not None:
            state = Path(state_dir)
            state.mkdir(parents=True, exist_ok=True)
            self._lease = RunLease(state)
            self._journal = CheckpointJournal(state / JOURNAL_NAME)
            # Materialize the journal file immediately: a state directory
            # always holds the snapshot/journal *pair*, so the doctor can
            # treat a snapshot without its journal (or vice versa) as torn
            # state rather than a legitimate layout.
            self._journal.path.touch(exist_ok=True)
            self._snapshot_path = state / SNAPSHOT_NAME

    # -- durability --------------------------------------------------------

    def acquire_state(self) -> None:
        """Take the state-directory lease (no-op without ``--state``)."""
        if self._lease is not None:
            self._lease.acquire()

    def release_state(self) -> None:
        """Release the state-directory lease (no-op without ``--state``)."""
        if self._lease is not None:
            self._lease.release()

    def _snapshot(self) -> str:
        """Persist the session, then journal the adds it now covers."""
        assert self._snapshot_path is not None
        self.session.save(self._snapshot_path)
        if self._journal is not None:
            for request_id in self._pending_add_ids:
                self._journal.mark_done(request_id, records=len(self.session))
        self._pending_add_ids.clear()
        self._adds_since_snapshot = 0
        return str(self._snapshot_path)

    def _drain_state(self) -> None:
        """The durable half of a drain: snapshot, then truncate the journal.

        Ordering matters for crash consistency: the snapshot lands first
        (atomic tmp + replace), then the journal is compacted to one
        canonical line per add id (also atomic) and re-materialized. A
        kill between the two leaves a valid snapshot plus a journal with
        duplicate/torn lines — exactly what ``repro doctor`` repairs.
        """
        if self._snapshot_path is None:
            return
        self._snapshot()
        if self._journal is not None:
            if self._journal.torn_lines or self._journal.duplicate_lines:
                self._journal.compact()
            # ``compact`` deletes an entry-less journal; restore the file
            # so the snapshot/journal pairing invariant survives drains.
            self._journal.path.touch(exist_ok=True)

    # -- request handling --------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Execute one request dict; always returns a response dict."""
        faults.fire("serve:request")
        op = request.get("op")
        if op == "add":
            return self._handle_add(request)
        if op == "query":
            result = self.session.query(
                _parse_record(request["record"]), request.get("k")
            )
            return {"ok": True, "op": "query", "result": result.to_dict()}
        if op == "query_batch":
            results = self.session.query_batch(
                [_parse_record(entry) for entry in request.get("records", [])],
                request.get("k"),
            )
            return {
                "ok": True,
                "op": "query_batch",
                "results": [result.to_dict() for result in results],
            }
        if op == "stats":
            return {"ok": True, "op": "stats", "stats": self.session.stats()}
        if op == "snapshot":
            if self._snapshot_path is None:
                return {
                    "ok": False,
                    "op": "snapshot",
                    "error": "no state directory configured",
                }
            return {"ok": True, "op": "snapshot", "path": self._snapshot()}
        if op == "shutdown":
            self.draining.set()
            return {"ok": True, "op": "shutdown", "draining": True}
        return error_response("unknown_op", f"unknown op {op!r}")

    def _handle_add(self, request: dict) -> dict:
        request_id = request.get("id")
        request_id = None if request_id is None else str(request_id)
        if (
            request_id is not None
            and self._journal is not None
            and self._journal.is_done(request_id)
        ):
            obs.inc("serve.adds_skipped")
            return {
                "ok": True,
                "op": "add",
                "added": 0,
                "skipped": True,
                "records": len(self.session),
            }
        batch = [_parse_record(entry) for entry in request.get("records", [])]
        # Replay tolerance: a crash between snapshot and journal append
        # re-delivers an add whose records the snapshot already holds.
        fresh = [r for r in batch if r.record_id not in self.session]
        added = self.session.add_records(fresh)
        if request_id is not None:
            self._pending_add_ids.append(request_id)
        self._adds_since_snapshot += added
        if (
            self.snapshot_every
            and self._snapshot_path is not None
            and self._adds_since_snapshot >= self.snapshot_every
        ):
            self._snapshot()
        return {
            "ok": True,
            "op": "add",
            "added": added,
            "deduplicated": len(batch) - len(fresh),
            "records": len(self.session),
        }

    # -- the loop ----------------------------------------------------------

    def run(
        self,
        input_stream: IO[str] | None = None,
        output_stream: IO[str] | None = None,
        *,
        install_signals: bool = True,
    ) -> int:
        """Serve until EOF, ``shutdown`` or SIGTERM; returns the exit code.

        Reads happen on a daemon thread feeding a queue, so a SIGTERM
        arriving while intake is blocked still drains promptly: the main
        loop polls the queue every ``poll_seconds`` and checks the drain
        flag between requests.
        """
        source = input_stream if input_stream is not None else sys.stdin
        sink = output_stream if output_stream is not None else sys.stdout

        def emit(payload: dict) -> None:
            sink.write(json.dumps(payload) + "\n")
            sink.flush()

        previous_handler = None
        if install_signals:
            previous_handler = signal.signal(
                signal.SIGTERM, lambda signum, frame: self.draining.set()
            )

        lines: queue.Queue = queue.Queue()

        def _reader() -> None:
            for line in source:
                lines.put(line)
            lines.put(None)

        threading.Thread(target=_reader, daemon=True, name="serve-reader").start()

        if self._lease is not None:
            self._lease.acquire()
        emit({"ok": True, "event": "ready", "records": len(self.session)})
        try:
            while True:
                if self.draining.is_set() and lines.empty():
                    break
                try:
                    line = lines.get(timeout=self.poll_seconds)
                except queue.Empty:
                    continue
                if line is None:
                    break
                try:
                    request = parse_request(line)
                except BadRequest as exc:
                    # A torn or malformed line degrades to a structured
                    # event; the daemon keeps serving.
                    emit(bad_request_response(exc))
                    continue
                if request is None:
                    continue
                try:
                    response = self.handle(request)
                except faults.InjectedFault:
                    raise
                except Exception as exc:  # keep serving through bad requests
                    obs.inc("serve.request_errors")
                    response = error_response(
                        "internal", f"{type(exc).__name__}: {exc}"
                    )
                emit(response)
                # The shutdown op stops intake at once (deterministic —
                # any lines still queued behind it are dropped); SIGTERM
                # instead finishes whatever was already read.
                if response.get("op") == "shutdown" and response.get("ok"):
                    break
            # Drain while our SIGTERM handler is still installed: a second
            # SIGTERM landing mid-snapshot must defer (set the already-set
            # drain flag), not terminate the process and strand a
            # ``session.json.tmp<pid>`` as the only copy of the state.
            self._drain_state()
            emit(
                {"ok": True, "event": "drained", "stats": self.session.stats()}
            )
        finally:
            if install_signals and previous_handler is not None:
                signal.signal(signal.SIGTERM, previous_handler)
        if self._lease is not None:
            self._lease.release()
        self.session.close()
        return 0


def serve_loop(
    session: MatcherSession,
    input_stream: IO[str] | None = None,
    output_stream: IO[str] | None = None,
    *,
    state_dir: Path | str | None = None,
    snapshot_every: int = 0,
    install_signals: bool = True,
) -> int:
    """Convenience wrapper: build a :class:`ServeLoop` and run it."""
    loop = ServeLoop(
        session, state_dir=state_dir, snapshot_every=snapshot_every
    )
    return loop.run(
        input_stream, output_stream, install_signals=install_signals
    )
