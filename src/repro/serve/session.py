"""The resident matching session: fitted matcher + incremental ANN index.

A :class:`MatcherSession` is the online counterpart of
:class:`~repro.experiments.runner.ExperimentRunner`: where the runner
rebuilds blocking structures and feature caches per experiment, the
session builds them **once** and then only appends. The three invariants
the test suite pins:

1. **Prediction parity** — ``query_batch`` routes candidate pairs through
   the same extractor and matcher ``predict`` path as the offline runner,
   so predictions on the same pairs are bit-identical.
2. **No rebuilds** — ``add_records`` appends to the small-world graph /
   LSH buckets and the incremental incidence structure; the
   ``blocking.ann.index_builds`` and ``features.incidence_rebuilds``
   counters stay flat after construction.
3. **Snapshot fidelity** — ``save``/``load`` round-trips through the
   checksummed envelope format; the restored session re-interns records
   in the original insertion order, so its index answers identically.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro import obs
from repro.blocking.ann import AnnConfig
from repro.blocking.base import Candidates
from repro.blocking.factory import INDEX_SPECS, make_index
from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.records import Record
from repro.matchers.esde import EsdeMatcher
from repro.obs.metrics import LatencyHistogram
from repro.runtime.cache import read_envelope, write_envelope
from repro.text.feature_store import store_for_task

#: ``format`` marker inside session snapshot envelopes.
SESSION_FORMAT = "repro.serve.session"
SESSION_VERSION = 1

#: The latency phases every session tracks (ISSUE: block/extract/predict).
PHASES = ("block", "extract", "predict")


@dataclass(frozen=True, kw_only=True)
class SessionConfig:
    """Frozen, keyword-only configuration of a matching session.

    Mirrors :class:`~repro.experiments.runner.RunnerConfig`: constructed
    once, validated eagerly, immutable afterwards. The ANN knobs are the
    :class:`~repro.blocking.ann.AnnConfig` fields verbatim;
    :meth:`ann_config` materializes them (and :meth:`__post_init__`
    delegates their validation to ``AnnConfig``'s own).
    """

    matcher: str = "SA-ESDE"
    blocker: str = "graph"
    k: int = 10
    q: int = 3
    seed: int = 0
    n_hashes: int = 128
    bands: int = 32
    min_shared_bands: int = 1
    max_bucket: int | None = 200
    max_degree: int = 16
    beam_width: int = 32

    def __post_init__(self) -> None:
        if not isinstance(self.matcher, str) or not self.matcher:
            raise ValueError(f"matcher must be a non-empty name, got {self.matcher!r}")
        if self.blocker not in INDEX_SPECS:
            raise ValueError(
                f"blocker must be one of {INDEX_SPECS}, got {self.blocker!r}"
            )
        self.ann_config()  # eager validation of every ANN knob

    def ann_config(self) -> AnnConfig:
        """The ANN index configuration these session knobs denote."""
        return AnnConfig(
            backend=self.blocker,
            q=self.q,
            n_hashes=self.n_hashes,
            bands=self.bands,
            min_shared_bands=self.min_shared_bands,
            max_bucket=self.max_bucket,
            k=self.k,
            max_degree=self.max_degree,
            beam_width=self.beam_width,
            seed=self.seed,
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class QueryResult:
    """One query's answer: ranked candidates plus per-candidate verdicts."""

    query_id: str
    candidates: Candidates
    predictions: tuple[int, ...]

    @property
    def matches(self) -> tuple[str, ...]:
        """Candidate record ids the matcher classified as matches."""
        return tuple(
            record_id
            for record_id, verdict in zip(self.candidates.ids, self.predictions)
            if verdict
        )

    def to_dict(self) -> dict:
        return {
            "query_id": self.query_id,
            "candidates": list(self.candidates.ids),
            "scores": [round(float(s), 6) for s in self.candidates.scores],
            "predictions": list(self.predictions),
            "matches": list(self.matches),
        }


class _ServingTask:
    """Minimal stand-in for a :class:`~repro.data.task.MatchingTask`.

    Restored sessions have no training/validation splits — the extractor
    only needs ``attributes`` plus weak referenceability (it resolves its
    :class:`~repro.text.feature_store.FeatureStore` through the task via
    :func:`~repro.text.feature_store.store_for_task`).
    """

    __slots__ = ("name", "attributes", "__weakref__")

    def __init__(self, name: str, attributes: Sequence[str]) -> None:
        self.name = name
        self.attributes = tuple(attributes)


class MatcherSession:
    """A long-lived matcher + index answering queries incrementally.

    Built from a :class:`~repro.data.task.MatchingTask` (fit path) or
    restored via :meth:`load`. The session fits the matcher with the
    ordinary offline path *first*, then switches the task's feature
    store to incremental mode and builds the ANN index over the task's
    right-hand records — every later :meth:`add_records` and query only
    appends.
    """

    def __init__(
        self,
        task,
        config: SessionConfig | None = None,
        *,
        matcher=None,
        records: Sequence[Record] | None = None,
    ) -> None:
        self.config = config if config is not None else SessionConfig()
        self._task = task  # keeps the store_for_task weakref entry alive
        if matcher is None:
            from repro.experiments.matcher_suite import build_matcher

            matcher = build_matcher(task, self.config.matcher, self.config.seed)
        if not getattr(matcher, "_fitted", False):
            with obs.timed("serve.fit_seconds"):
                matcher.fit(task)
        self._matcher = matcher
        self._store = store_for_task(task)
        # Fit used the classic rebuild path above; from here on every
        # incidence structure grows append-only.
        self._store.enable_incremental_all()
        if records is None:
            records = task.right.records()
        with obs.timed("serve.index_build_seconds"):
            self._index = make_index(
                self.config.ann_config(), records, store=self._store
            )
        self._records: dict[str, Record] = {
            record.record_id: record for record in self._index.records
        }
        self.latency: dict[str, LatencyHistogram] = {
            phase: LatencyHistogram() for phase in PHASES
        }
        self._queries = 0
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Mark the session closed; further calls raise RuntimeError."""
        self._closed = True

    def __enter__(self) -> "MatcherSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    def __len__(self) -> int:
        """Number of records resident in the index."""
        return len(self._records)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._records

    @property
    def matcher(self):
        return self._matcher

    @property
    def index(self):
        return self._index

    # -- incremental writes ------------------------------------------------

    def add_records(self, records: Iterable[Record]) -> int:
        """Append *records* to the resident index; returns the count added.

        Tokenization/q-gramming happens once (inside the shared feature
        store); the ANN index and incidence structures grow in place —
        the ``blocking.ann.index_builds`` counter does not move.
        """
        self._ensure_open()
        batch = list(records)
        for record in batch:
            if record.record_id in self._records:
                raise ValueError(
                    f"record id {record.record_id!r} already in session"
                )
        if not batch:
            return 0
        self._index.insert(batch)
        for record in batch:
            self._records[record.record_id] = record
        obs.inc("serve.records_added", float(len(batch)))
        return len(batch)

    # -- queries -----------------------------------------------------------

    def query(self, record: Record, k: int | None = None) -> QueryResult:
        """Match one probe record against the resident index."""
        return self.query_batch([record], k)[0]

    def query_batch(
        self, records: Sequence[Record], k: int | None = None
    ) -> list[QueryResult]:
        """Match a batch of probe records, coalescing the predict call.

        All queries' candidate pairs are deduplicated by ``(left_id,
        right_id)`` and routed through **one** matcher ``predict`` — one
        vectorized feature-kernel pass — then fanned back out per query.
        Three latency phases are recorded: ``block`` (ANN probe wall
        time), ``extract`` (feature-kernel seconds inside predict, read
        from the ``features.extract_seconds`` timer delta) and
        ``predict`` (the classification remainder).
        """
        self._ensure_open()
        top_k = self.config.k if k is None else int(k)
        if top_k < 1:
            raise ValueError(f"k must be >= 1, got {top_k}")
        probes = list(records)
        if not probes:
            return []

        started = time.perf_counter()
        candidate_lists = [self._index.search(probe, top_k) for probe in probes]
        block_seconds = time.perf_counter() - started
        self.latency["block"].observe(block_seconds)
        obs.observe("serve.block_seconds", block_seconds)

        # Coalesce: every distinct (probe, candidate) pair exactly once.
        pair_set = LabeledPairSet()
        seen: set[tuple[str, str]] = set()
        for probe, result in zip(probes, candidate_lists):
            for record_id in result.ids:
                key = (probe.record_id, record_id)
                if key in seen:
                    continue
                seen.add(key)
                pair_set.add(RecordPair(probe, self._records[record_id]), 0)

        verdicts: dict[tuple[str, str], int] = {}
        extract_seconds = 0.0
        classify_seconds = 0.0
        if len(pair_set):
            registry = obs.active().metrics
            extract_before = registry.timer_total("features.extract_seconds")
            started = time.perf_counter()
            predicted = self._matcher.predict(pair_set)
            predict_wall = time.perf_counter() - started
            extract_seconds = max(
                0.0,
                registry.timer_total("features.extract_seconds") - extract_before,
            )
            classify_seconds = max(0.0, predict_wall - extract_seconds)
            verdicts = {
                pair.key: int(verdict)
                for pair, verdict in zip(pair_set.pairs, predicted.tolist())
            }
        self.latency["extract"].observe(extract_seconds)
        self.latency["predict"].observe(classify_seconds)
        obs.observe("serve.extract_seconds", extract_seconds)
        obs.observe("serve.predict_seconds", classify_seconds)
        self._queries += len(probes)
        obs.inc("serve.queries", float(len(probes)))

        results = []
        for probe, result in zip(probes, candidate_lists):
            predictions = tuple(
                verdicts[(probe.record_id, record_id)] for record_id in result.ids
            )
            results.append(
                QueryResult(
                    query_id=probe.record_id,
                    candidates=result,
                    predictions=predictions,
                )
            )
        return results

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """JSON-ready session summary: sizes, counts, latency quantiles."""
        return {
            "records": len(self._records),
            "queries": self._queries,
            "matcher": getattr(self._matcher, "name", self.config.matcher),
            "blocker": self.config.blocker,
            "latency": {
                phase: histogram.to_dict()
                for phase, histogram in self.latency.items()
            },
        }

    # -- snapshots ---------------------------------------------------------

    def save(self, path: Path | str) -> None:
        """Snapshot the session onto the checksummed envelope format.

        Persists the config, the matcher's fitted decision state and the
        indexed records **in insertion order** — replaying that order at
        load time re-interns identically, so the restored index answers
        bit-identically to this one.
        """
        self._ensure_open()
        if not hasattr(self._matcher, "to_payload"):
            raise ValueError(
                f"matcher {self.config.matcher!r} does not support "
                "session snapshots (no to_payload)"
            )
        payload = {
            "format": SESSION_FORMAT,
            "version": SESSION_VERSION,
            "task_name": getattr(self._task, "name", "session"),
            "attributes": list(self._task.attributes),
            "config": self.config.to_dict(),
            "matcher": self._matcher.to_payload(),
            "records": [
                {
                    "record_id": record.record_id,
                    "source": record.source,
                    "values": dict(record.values),
                }
                for record in self._index.records
            ],
        }
        write_envelope(Path(path), payload)
        obs.inc("serve.snapshots")

    @classmethod
    def load(cls, path: Path | str) -> "MatcherSession":
        """Restore a session from a :meth:`save` snapshot."""
        payload = read_envelope(Path(path))
        if not isinstance(payload, dict) or payload.get("format") != SESSION_FORMAT:
            raise ValueError(f"{path}: not a session snapshot")
        if payload.get("version") != SESSION_VERSION:
            raise ValueError(
                f"{path}: unsupported session version {payload.get('version')!r}"
            )
        config = SessionConfig(**payload["config"])
        shim = _ServingTask(payload["task_name"], payload["attributes"])
        matcher_payload = payload["matcher"]
        if matcher_payload.get("kind") != "esde":
            raise ValueError(
                f"{path}: unknown matcher kind {matcher_payload.get('kind')!r}"
            )
        matcher = EsdeMatcher.from_payload(matcher_payload, shim)
        records = [
            Record(entry["record_id"], entry["source"], entry["values"])
            for entry in payload["records"]
        ]
        session = cls(shim, config, matcher=matcher, records=records)
        obs.inc("serve.snapshot_loads")
        return session


def open_session(
    task, config: SessionConfig | None = None, **overrides
) -> MatcherSession:
    """Open a matching session over *task*.

    Keyword overrides patch individual :class:`SessionConfig` fields::

        session = open_session(task, matcher="SAQ-ESDE", k=5)
    """
    if config is None:
        config = SessionConfig(**overrides)
    elif overrides:
        config = dataclasses.replace(config, **overrides)
    return MatcherSession(task, config)
