"""The serve wire protocol: hardened JSONL request parsing, shared.

Both request front ends — the stdio :class:`~repro.serve.loop.ServeLoop`
and the socket :class:`~repro.serve.frontend.SocketFrontend` — speak the
same protocol: one JSON object per ``\\n``-terminated line in, one JSON
object per line out. This module is the single place where raw bytes
become request dicts, so a malformed, torn, oversized or non-object line
degrades identically everywhere: a structured ``bad_request`` response
(plus a ``serve.bad_request`` counter) instead of an unhandled exception
killing the daemon.

Error responses are structured: ``{"ok": false, "error": "<code>",
"detail": "<human text>"}`` where ``error`` is a machine-matchable code
from :data:`ERROR_CODES` — clients branch on the code, humans read the
detail. :func:`error_response` is the one constructor, so every error a
front end emits carries the same shape.
"""

from __future__ import annotations

import json

from repro import obs

#: Operations the execution core understands (``health``/``ready`` are
#: answered by the socket front end without touching the core).
OPS = (
    "add",
    "query",
    "query_batch",
    "stats",
    "snapshot",
    "shutdown",
    "health",
    "ready",
)

#: Machine-matchable error codes every front end emits.
ERROR_CODES = (
    "bad_request",        # unparseable/torn/non-object/oversized line
    "unknown_op",         # parsed fine, but no such operation
    "overloaded",         # shed at admission (queue depth / bytes cap)
    "deadline_exceeded",  # admitted, but expired before execution
    "circuit_open",       # per-client breaker short-circuited the request
    "draining",           # server is shutting down, no new work admitted
    "internal",           # the operation itself raised
)

#: Hard cap on one request line (bytes). A line longer than this is shed
#: as ``bad_request`` before JSON parsing — an unbounded line is an
#: unbounded allocation, exactly what admission control exists to stop.
MAX_LINE_BYTES = 4 * 1024 * 1024


class BadRequest(ValueError):
    """A line that cannot become a request dict (torn, malformed, huge)."""


def error_response(code: str, detail: str, **extra: object) -> dict:
    """The one constructor for structured protocol errors."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}; expected {ERROR_CODES}")
    response = {"ok": False, "error": code, "detail": detail}
    response.update(extra)
    return response


def parse_request(line: str, *, max_bytes: int = MAX_LINE_BYTES) -> dict | None:
    """One stripped protocol line → a request dict.

    Returns ``None`` for blank lines (keep-alives / trailing newlines are
    not requests). Raises :class:`BadRequest` — never ``json.JSONDecodeError``
    or anything else — for a line that is torn mid-write, not JSON, not a
    JSON *object*, or larger than ``max_bytes``.
    """
    text = line.strip()
    if not text:
        return None
    if len(text.encode("utf-8", errors="replace")) > max_bytes:
        raise BadRequest(
            f"request line exceeds {max_bytes} bytes"
        )
    try:
        request = json.loads(text)
    except json.JSONDecodeError as exc:
        # A torn line (client died mid-write, or a crash tore the stream)
        # parses exactly like a malformed one; both degrade, neither kills.
        raise BadRequest(f"not valid JSON: {exc}") from None
    if not isinstance(request, dict):
        raise BadRequest(
            f"request must be a JSON object, got {type(request).__name__}"
        )
    return request


def bad_request_response(error: BadRequest | str) -> dict:
    """The structured response for one unparseable line (counts it too)."""
    obs.inc("serve.bad_request")
    return error_response("bad_request", str(error))


def encode_response(response: dict) -> bytes:
    """One response dict → its wire bytes (JSON + newline, UTF-8)."""
    return (json.dumps(response) + "\n").encode("utf-8")
