"""Concurrent socket front end for ``repro.serve``: admission, deadlines, shedding.

The stdio :class:`~repro.serve.loop.ServeLoop` is single-client by
construction: one slow reader stalls the daemon and there is no notion
of overload. This module puts a zero-dependency threaded TCP/unix-socket
server in front of the *same* execution core, with the concurrency
shaped so it can never change predictions:

* **Reader threads** (one per connection) parse length-delimited JSONL
  with the shared :func:`~repro.serve.protocol.parse_request` and feed a
  **bounded admission queue** (:class:`AdmissionQueue`: depth cap +
  in-flight-bytes cap). A full queue sheds the request with a structured
  ``overloaded`` response and a ``serve.shed`` counter — the queue never
  grows without bound, and memory is capped by admitted bytes.
* A single **dispatcher thread** is the only thread that touches the
  :class:`~repro.serve.session.MatcherSession`. Mutating ops (``add``,
  ``snapshot``, ``shutdown``) execute through the core's
  :meth:`~repro.serve.loop.ServeLoop.handle`, preserving the exactly-once
  journal semantics and grown-vs-rebuilt bit-identity of the stdio path.
  Consecutive admitted queries with a compatible ``k`` are **coalesced**
  into one :meth:`~repro.serve.session.MatcherSession.query_batch` call
  (strictly FIFO — coalescing never reorders a query past a mutation, so
  every answer reflects the state at its admission order).
* Every admitted request carries a **deadline** from an
  :class:`~repro.runtime.guard.AdaptiveDeadlineModel` keyed by op; a
  request whose queue sojourn exceeds it answers ``deadline_exceeded``
  instead of executing — late work is refused, never silently stale.
* **Per-client circuit breakers** (:class:`~repro.runtime.breaker`)
  count protocol failures (bad lines, unknown ops, raising ops); an open
  breaker short-circuits that client to ``circuit_open`` on the reader
  thread without consuming dispatcher time.
* **Slow-client writes** are bounded by a send timeout; a write failure
  (or an injected ``frontend:write``/``frontend:disconnect`` fault)
  closes *that* client only — a peer vanishing mid-coalesced-batch never
  poisons the batch for its co-batched neighbours.
* ``health``/``ready`` are answered on the reader thread, bypassing
  admission entirely, so liveness probes keep working under overload.

**Drain.** SIGTERM (or the ``shutdown`` op) stops intake — readers
answer ``draining`` — while the dispatcher finishes every already
admitted request, then runs the core's drain path (snapshot → journal
truncate), broadcasts a final ``drained`` event to connected clients and
closes the listener. The SIGTERM handler stays installed through the
final snapshot (see :meth:`ServeLoop.run` for why).

**Chaos.** Fault sites ``frontend:accept``, ``frontend:read``,
``frontend:write``, ``frontend:disconnect`` and ``frontend:batch``
extend :mod:`repro.runtime.chaos` campaigns to the socket layer; the
``kill`` kind at ``frontend:batch`` SIGKILLs mid-coalesced-batch for the
crash-consistency checker.
"""

from __future__ import annotations

import signal
import socket
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO

from repro import obs
from repro.obs.metrics import LatencyHistogram
from repro.runtime import faults
from repro.runtime.breaker import BreakerRegistry
from repro.runtime.guard import AdaptiveDeadlineModel
from repro.serve.loop import ServeLoop, parse_record_payload
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    BadRequest,
    bad_request_response,
    encode_response,
    error_response,
    parse_request,
)

#: Fault-injection sites owned by the socket front end.
FAULT_SITES = (
    "frontend:accept",      # error/hang while accepting a connection
    "frontend:read",        # error/hang on a client's receive path
    "frontend:write",       # error/hang while sending a response
    "frontend:disconnect",  # force-close a client right after admission
    "frontend:batch",       # error/hang/kill at the top of a coalesced batch
)

#: Ops that are answered inline on the reader thread, bypassing admission.
_FAST_OPS = ("health", "ready")

#: Ops the dispatcher may coalesce into one ``query_batch`` call.
_QUERY_OPS = ("query", "query_batch")


@dataclass(frozen=True, kw_only=True)
class FrontendConfig:
    """Admission, deadline and breaker settings for a socket front end."""

    max_queue_depth: int = 64
    max_inflight_bytes: int = 8 * 1024 * 1024
    max_line_bytes: int = MAX_LINE_BYTES
    coalesce_max: int = 16
    send_timeout_seconds: float = 5.0
    poll_seconds: float = 0.05
    deadline_margin: float = 4.0
    deadline_floor_seconds: float = 0.25
    deadline_ceiling_seconds: float = 60.0
    fallback_deadline_seconds: float | None = 30.0
    breaker_threshold: int = 5
    breaker_cooldown_seconds: float = 1.0
    listen_backlog: int = 128

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_inflight_bytes < 1:
            raise ValueError(
                f"max_inflight_bytes must be >= 1, got {self.max_inflight_bytes}"
            )
        if self.coalesce_max < 1:
            raise ValueError(
                f"coalesce_max must be >= 1, got {self.coalesce_max}"
            )
        if self.send_timeout_seconds <= 0:
            raise ValueError(
                f"send_timeout_seconds must be positive, "
                f"got {self.send_timeout_seconds}"
            )
        if self.poll_seconds <= 0:
            raise ValueError(
                f"poll_seconds must be positive, got {self.poll_seconds}"
            )

    def deadline_model(self) -> AdaptiveDeadlineModel:
        return AdaptiveDeadlineModel(
            margin=self.deadline_margin,
            floor_seconds=self.deadline_floor_seconds,
            ceiling_seconds=self.deadline_ceiling_seconds,
            fallback_seconds=self.fallback_deadline_seconds,
        )


@dataclass
class _Admitted:
    """One request that made it past admission, waiting for the dispatcher."""

    client: "_Client"
    request: dict
    op: str
    request_id: object
    cost: int
    received_at: float
    deadline_seconds: float | None

    def expired(self, now: float) -> bool:
        return (
            self.deadline_seconds is not None
            and now - self.received_at > self.deadline_seconds
        )


class AdmissionQueue:
    """Bounded FIFO: depth-capped queue, byte-capped admitted-but-unfinished.

    ``offer`` refuses (returns ``False``) instead of blocking — shedding
    is the caller's job. Bytes are reserved at admission and released by
    ``done`` *after* execution, so the byte cap bounds total buffered
    request payload, not just what is queued.
    """

    def __init__(self, max_depth: int, max_bytes: int) -> None:
        self.max_depth = max_depth
        self.max_bytes = max_bytes
        self._items: deque[_Admitted] = deque()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._inflight_bytes = 0

    def offer(self, item: _Admitted) -> bool:
        with self._lock:
            if len(self._items) >= self.max_depth:
                return False
            # A lone oversized request is admitted when nothing else is in
            # flight (the line cap already bounds it); otherwise it waits
            # like everyone else or is shed.
            if (
                self._inflight_bytes + item.cost > self.max_bytes
                and self._inflight_bytes > 0
            ):
                return False
            self._items.append(item)
            self._inflight_bytes += item.cost
            self._ready.notify()
            return True

    def take(self, timeout: float) -> _Admitted | None:
        with self._ready:
            if not self._items:
                self._ready.wait(timeout)
            if not self._items:
                return None
            return self._items.popleft()

    def take_head_if(self, predicate) -> _Admitted | None:
        """Pop the head only when it matches — FIFO-preserving coalescing."""
        with self._lock:
            if self._items and predicate(self._items[0]):
                return self._items.popleft()
            return None

    def done(self, item: _Admitted) -> None:
        with self._lock:
            self._inflight_bytes -= item.cost

    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def inflight_bytes(self) -> int:
        with self._lock:
            return self._inflight_bytes


class _Client:
    """One connection: socket + write lock + liveness flag."""

    def __init__(
        self, client_id: str, sock: socket.socket, frontend: "SocketFrontend"
    ) -> None:
        self.client_id = client_id
        self.sock = sock
        self.frontend = frontend
        self.alive = True
        self._send_lock = threading.Lock()

    def send(self, response: dict) -> bool:
        """Write one response; on failure close this client only."""
        payload = encode_response(response)
        with self._send_lock:
            if not self.alive:
                return False
            try:
                faults.fire("frontend:write")
                self.sock.settimeout(self.frontend.config.send_timeout_seconds)
                self.sock.sendall(payload)
                return True
            except (OSError, faults.InjectedFault):
                # Slow or vanished client: bounded by the send timeout,
                # and the failure is contained to this connection.
                obs.inc("serve.frontend.write_errors")
                self._close_locked()
                return False

    def close(self) -> None:
        with self._send_lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if not self.alive:
            return
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
        self.frontend._forget(self)


class SocketFrontend:
    """Threaded TCP/unix-socket server around a single-writer serve core."""

    def __init__(
        self,
        core: ServeLoop,
        *,
        listen: str | None = None,
        socket_path: str | Path | None = None,
        config: FrontendConfig | None = None,
    ) -> None:
        if (listen is None) == (socket_path is None):
            raise ValueError("exactly one of listen/socket_path is required")
        self.core = core
        self.session = core.session
        self.config = config or FrontendConfig()
        self.listen = listen
        self.socket_path = None if socket_path is None else Path(socket_path)
        self.draining = core.draining  # shared: shutdown op drains both
        self.deadlines = self.config.deadline_model()
        self.breakers = BreakerRegistry(
            failure_threshold=self.config.breaker_threshold,
            cooldown_seconds=self.config.breaker_cooldown_seconds,
        )
        self.queue = AdmissionQueue(
            self.config.max_queue_depth, self.config.max_inflight_bytes
        )
        self.latency: dict[str, LatencyHistogram] = {}
        self._listener: socket.socket | None = None
        self._clients: dict[str, _Client] = {}
        self._clients_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._dispatcher: threading.Thread | None = None
        self._started = threading.Event()
        self._drained = threading.Event()
        self._started_at: float | None = None
        self._client_seq = 0
        self._stats_lock = threading.Lock()
        self._counts = {
            "connections": 0,
            "requests": 0,
            "admitted": 0,
            "shed": 0,
            "deadline_exceeded": 0,
            "circuit_open": 0,
            "bad_lines": 0,
            "batches": 0,
            "coalesced": 0,
            "disconnects": 0,
        }

    # -- bookkeeping -------------------------------------------------------

    def _count(self, key: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._counts[key] += amount

    def _observe(self, op: str, sojourn_seconds: float) -> None:
        with self._stats_lock:
            histogram = self.latency.get(op)
            if histogram is None:
                histogram = self.latency[op] = LatencyHistogram()
            histogram.observe(sojourn_seconds)
        obs.observe(f"serve.frontend.{op}_seconds", sojourn_seconds)

    def frontend_stats(self) -> dict:
        """JSON-ready front-end state: queue, counters, per-op latency."""
        with self._stats_lock:
            counts = dict(self._counts)
            latency = {
                op: histogram.to_dict()
                for op, histogram in sorted(self.latency.items())
            }
        return {
            "address": self.address(),
            "queue_depth": self.queue.depth(),
            "inflight_bytes": self.queue.inflight_bytes(),
            "max_queue_depth": self.config.max_queue_depth,
            "max_inflight_bytes": self.config.max_inflight_bytes,
            "draining": self.draining.is_set(),
            "open_breakers": self.breakers.open_keys(),
            "deadlines": self.deadlines.snapshot(),
            "counts": counts,
            "latency": latency,
        }

    def address(self) -> str:
        """The bound address: ``host:port`` (TCP) or the socket path."""
        if self.socket_path is not None:
            return str(self.socket_path)
        if self._listener is not None:
            host, port = self._listener.getsockname()[:2]
            return f"{host}:{port}"
        return self.listen or ""

    def _forget(self, client: _Client) -> None:
        with self._clients_lock:
            if self._clients.pop(client.client_id, None) is not None:
                self._count("disconnects")
                obs.inc("serve.frontend.disconnects")

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bind, listen, and start the accept + dispatcher threads."""
        if self._started.is_set():
            raise RuntimeError("frontend already started")
        if self.socket_path is not None:
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            # A leftover path from a killed daemon would block the bind;
            # the state lease — not the socket file — guards against two
            # live daemons, so a stale path is safe to clear.
            self.socket_path.unlink(missing_ok=True)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(str(self.socket_path))
        else:
            host, _, port_text = (self.listen or "").rpartition(":")
            try:
                port = int(port_text)
            except ValueError:
                raise ValueError(
                    f"--listen expects HOST:PORT, got {self.listen!r}"
                ) from None
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((host or "127.0.0.1", port))
        listener.listen(self.config.listen_backlog)
        listener.settimeout(self.config.poll_seconds)
        self._listener = listener
        self.core.acquire_state()
        self._started_at = time.monotonic()
        self._started.set()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="frontend-dispatch"
        )
        self._dispatcher.start()
        accept = threading.Thread(
            target=self._accept_loop, daemon=True, name="frontend-accept"
        )
        accept.start()
        self._threads.append(accept)

    def stop(self, timeout: float = 30.0) -> None:
        """Drain and wait for the dispatcher to finish (tests, shutdown)."""
        self.draining.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout)

    def serve_forever(
        self,
        *,
        install_signals: bool = True,
        output_stream: IO[str] | None = None,
    ) -> int:
        """Run until SIGTERM or a ``shutdown`` op; returns the exit code.

        Emits a ``ready`` event with the bound address on
        ``output_stream`` (default stdout) so callers — `scripts/verify.sh`,
        the benchmarks — can discover an ephemeral port.
        """
        import json as _json

        sink = output_stream if output_stream is not None else sys.stdout
        previous_handler = None
        if install_signals:
            previous_handler = signal.signal(
                signal.SIGTERM, lambda signum, frame: self.draining.set()
            )
        try:
            self.start()
            sink.write(
                _json.dumps(
                    {
                        "ok": True,
                        "event": "ready",
                        "address": self.address(),
                        "records": len(self.session),
                    }
                )
                + "\n"
            )
            sink.flush()
            assert self._dispatcher is not None
            # The dispatcher owns the drain (snapshot included); keeping
            # the SIGTERM handler installed until it exits means a second
            # SIGTERM mid-snapshot just re-sets the drain flag.
            while self._dispatcher.is_alive():
                self._dispatcher.join(timeout=0.2)
        finally:
            if install_signals and previous_handler is not None:
                signal.signal(signal.SIGTERM, previous_handler)
        return 0

    # -- accept + read -----------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self.draining.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us during drain
            try:
                faults.fire("frontend:accept")
            except faults.InjectedFault:
                obs.inc("serve.frontend.accept_errors")
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            if conn.family == socket.AF_INET:
                # Request/response over small JSONL lines: Nagle's
                # algorithm interacting with delayed ACKs adds tens of
                # milliseconds to the tail under concurrent clients.
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._clients_lock:
                self._client_seq += 1
                client = _Client(f"client-{self._client_seq}", conn, self)
                self._clients[client.client_id] = client
            self._count("connections")
            obs.inc("serve.frontend.connections")
            reader = threading.Thread(
                target=self._read_loop,
                args=(client,),
                daemon=True,
                name=f"frontend-read-{client.client_id}",
            )
            reader.start()

    def _read_loop(self, client: _Client) -> None:
        buffer = b""
        client.sock.settimeout(self.config.poll_seconds)
        while client.alive:
            try:
                faults.fire("frontend:read")
                chunk = client.sock.recv(65536)
            except socket.timeout:
                continue
            except (OSError, faults.InjectedFault):
                obs.inc("serve.frontend.read_errors")
                client.close()
                return
            if not chunk:
                client.close()
                return
            buffer += chunk
            while b"\n" in buffer:
                line, _, buffer = buffer.partition(b"\n")
                self._on_line(client, line.decode("utf-8", errors="replace"))
            if len(buffer) > self.config.max_line_bytes:
                # An unterminated over-long line cannot be resynced: the
                # only safe recovery is to drop the connection.
                self._count("bad_lines")
                client.send(
                    bad_request_response(
                        f"request line exceeds {self.config.max_line_bytes} "
                        "bytes; disconnecting"
                    )
                )
                client.close()
                return

    def _on_line(self, client: _Client, line: str) -> None:
        breaker = self.breakers.breaker_for(client.client_id)
        try:
            request = parse_request(line, max_bytes=self.config.max_line_bytes)
        except BadRequest as exc:
            self._count("bad_lines")
            breaker.record_failure()
            client.send(bad_request_response(exc))
            return
        if request is None:
            return
        self._count("requests")
        obs.inc("serve.frontend.requests")
        op = request.get("op")
        op_key = op if isinstance(op, str) else "unknown"
        request_id = request.get("id")
        if op in _FAST_OPS:
            # Liveness probes must answer under overload and during
            # drain: no breaker, no admission, no dispatcher.
            client.send(self._echo(self._fast_response(op), request_id))
            return
        if not breaker.allow():
            self._count("circuit_open")
            obs.inc("serve.frontend.circuit_open")
            client.send(
                self._echo(
                    error_response(
                        "circuit_open",
                        f"{client.client_id} breaker is open; back off",
                    ),
                    request_id,
                )
            )
            return
        if self.draining.is_set():
            client.send(
                self._echo(
                    error_response("draining", "server is draining"), request_id
                )
            )
            return
        item = _Admitted(
            client=client,
            request=request,
            op=op_key,
            request_id=request_id,
            cost=len(line.encode("utf-8", errors="replace")),
            received_at=time.monotonic(),
            deadline_seconds=self.deadlines.deadline_for(op_key),
        )
        if not self.queue.offer(item):
            self._count("shed")
            obs.inc("serve.shed")
            client.send(
                self._echo(
                    error_response(
                        "overloaded",
                        "admission queue full; retry with backoff",
                        queue_depth=self.queue.depth(),
                        inflight_bytes=self.queue.inflight_bytes(),
                    ),
                    request_id,
                )
            )
            return
        self._count("admitted")
        obs.inc("serve.frontend.admitted")
        if faults.triggered("frontend:disconnect"):
            # Chaos: the peer vanishes right after admission — its
            # request is already in the queue and must not poison the
            # batch it gets coalesced into.
            client.close()

    def _fast_response(self, op: str) -> dict:
        if op == "health":
            uptime = (
                0.0
                if self._started_at is None
                else time.monotonic() - self._started_at
            )
            with self._clients_lock:
                clients = len(self._clients)
            return {
                "ok": True,
                "op": "health",
                "records": len(self.session),
                "uptime_seconds": round(uptime, 3),
                "clients": clients,
                "queue_depth": self.queue.depth(),
                "inflight_bytes": self.queue.inflight_bytes(),
                "draining": self.draining.is_set(),
            }
        ready = self._started.is_set() and not self.draining.is_set()
        return {"ok": True, "op": "ready", "ready": ready}

    @staticmethod
    def _echo(response: dict, request_id: object) -> dict:
        if request_id is not None:
            response["id"] = request_id
        return response

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            item = self.queue.take(self.config.poll_seconds)
            if item is None:
                if self.draining.is_set() and self.queue.depth() == 0:
                    break
                continue
            try:
                self._dispatch(item)
            finally:
                self.queue.done(item)
        self._shutdown_sequence()

    def _dispatch(self, first: _Admitted) -> None:
        now = time.monotonic()
        if self._reject_expired(first, now):
            return
        if first.op in _QUERY_OPS:
            self._dispatch_queries(first)
            return
        started = time.monotonic()
        try:
            response = self.core.handle(first.request)
        except faults.InjectedFault as exc:
            response = error_response("internal", f"injected: {exc}")
        except Exception as exc:  # robustness: the daemon keeps serving
            obs.inc("serve.request_errors")
            response = error_response("internal", f"{type(exc).__name__}: {exc}")
        elapsed = time.monotonic() - started
        ok = bool(response.get("ok"))
        if ok:
            self.deadlines.observe(first.op, elapsed)
        self._record_outcome(first, ok)
        if first.op == "stats" and ok:
            response["frontend"] = self.frontend_stats()
        self._observe(first.op, time.monotonic() - first.received_at)
        first.client.send(self._echo(response, first.request_id))

    def _record_outcome(self, item: _Admitted, ok: bool) -> None:
        breaker = self.breakers.breaker_for(item.client.client_id)
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    def _reject_expired(self, item: _Admitted, now: float) -> bool:
        if not item.expired(now):
            return False
        self._count("deadline_exceeded")
        obs.inc("serve.frontend.deadline_exceeded")
        item.client.send(
            self._echo(
                error_response(
                    "deadline_exceeded",
                    f"queued {now - item.received_at:.3f}s > deadline "
                    f"{item.deadline_seconds:.3f}s",
                ),
                item.request_id,
            )
        )
        return True

    def _dispatch_queries(self, first: _Admitted) -> None:
        """Coalesce the head-run of compatible queries into one batch."""
        batch = [first]
        taken: list[_Admitted] = []
        first_k = first.request.get("k")
        probe_ids: set[str] = set()

        def _compatible(item: _Admitted) -> bool:
            if item.op not in _QUERY_OPS or item.request.get("k") != first_k:
                return False
            # Two probes sharing a record_id would collide in the batch
            # verdict keys; flush first, coalesce the duplicate later.
            try:
                ids = self._probe_ids(item)
            except Exception:
                return False
            return not (ids & probe_ids)

        try:
            probe_ids |= self._probe_ids(first)
        except Exception:
            probe_ids = set()
        while len(batch) < self.config.coalesce_max:
            item = self.queue.take_head_if(_compatible)
            if item is None:
                break
            taken.append(item)
            batch.append(item)
            try:
                probe_ids |= self._probe_ids(item)
            except Exception:
                pass
        try:
            self._execute_query_batch(batch)
        finally:
            for item in taken:
                self.queue.done(item)

    @staticmethod
    def _probe_ids(item: _Admitted) -> set[str]:
        if item.op == "query":
            return {str(item.request["record"]["record_id"])}
        return {
            str(entry["record_id"])
            for entry in item.request.get("records", [])
        }

    def _execute_query_batch(self, batch: list[_Admitted]) -> None:
        now = time.monotonic()
        live = [item for item in batch if not self._reject_expired(item, now)]
        if not live:
            return
        self._count("batches")
        if len(live) > 1:
            self._count("coalesced", len(live) - 1)
            obs.inc("serve.frontend.coalesced", len(live) - 1)
        # Chaos site: error/hang/kill exactly when a multi-request batch
        # is about to touch the session — the point where a crash is most
        # entangled across clients.
        try:
            faults.fire("frontend:batch")
        except faults.InjectedFault as exc:
            for item in live:
                self._record_outcome(item, False)
                item.client.send(
                    self._echo(
                        error_response("internal", f"injected: {exc}"),
                        item.request_id,
                    )
                )
            return
        probes = []
        spans: list[tuple[_Admitted, int, int]] = []
        failed: list[tuple[_Admitted, dict]] = []
        for item in live:
            try:
                if item.op == "query":
                    records = [parse_record_payload(item.request["record"])]
                else:
                    records = [
                        parse_record_payload(entry)
                        for entry in item.request.get("records", [])
                    ]
            except Exception as exc:
                failed.append(
                    (
                        item,
                        error_response(
                            "internal", f"{type(exc).__name__}: {exc}"
                        ),
                    )
                )
                continue
            spans.append((item, len(probes), len(records)))
            probes.extend(records)
        for item, response in failed:
            self._record_outcome(item, False)
            item.client.send(self._echo(response, item.request_id))
        if not spans:
            return
        k = live[0].request.get("k")
        started = time.monotonic()
        try:
            results = self.session.query_batch(probes, k)
        except faults.InjectedFault as exc:
            results = None
            error = error_response("internal", f"injected: {exc}")
        except Exception as exc:
            obs.inc("serve.request_errors")
            results = None
            error = error_response("internal", f"{type(exc).__name__}: {exc}")
        elapsed = time.monotonic() - started
        if results is None:
            for item, _, _ in spans:
                self._record_outcome(item, False)
                item.client.send(self._echo(dict(error), item.request_id))
            return
        for item, offset, count in spans:
            slice_ = results[offset : offset + count]
            if item.op == "query":
                response = {
                    "ok": True,
                    "op": "query",
                    "result": slice_[0].to_dict(),
                }
            else:
                response = {
                    "ok": True,
                    "op": "query_batch",
                    "results": [result.to_dict() for result in slice_],
                }
            self.deadlines.observe(item.op, elapsed)
            self._record_outcome(item, True)
            self._observe(item.op, time.monotonic() - item.received_at)
            # A vanished peer fails its own send; co-batched neighbours
            # already have their slices and answer normally.
            item.client.send(self._echo(response, item.request_id))

    # -- drain -------------------------------------------------------------

    def _shutdown_sequence(self) -> None:
        # Late admissions can race the drain flag; answer them instead of
        # leaving the client hanging until the socket closes.
        while True:
            item = self.queue.take(0.0)
            if item is None:
                break
            try:
                item.client.send(
                    self._echo(
                        error_response("draining", "server is draining"),
                        item.request_id,
                    )
                )
            finally:
                self.queue.done(item)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        # The durable half: snapshot then truncate the journal, exactly
        # the stdio loop's drain path (single writer — this thread).
        self.core._drain_state()
        drained = {
            "ok": True,
            "event": "drained",
            "stats": self.session.stats(),
        }
        with self._clients_lock:
            clients = list(self._clients.values())
        for client in clients:
            client.send(dict(drained))
            client.close()
        if self.socket_path is not None:
            self.socket_path.unlink(missing_ok=True)
        self.core.release_state()
        self.session.close()
        obs.inc("serve.frontend.drained")
        self._drained.set()
