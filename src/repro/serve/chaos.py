"""Chaos campaigns against a live socket front end.

The offline chaos engine (:mod:`repro.runtime.chaos`) proves sweep
verdicts survive faults; this module proves the *serving* claim: a
socket front end under injected accept/read/write/disconnect/batch
faults still answers every finally-admitted query **bit-identically** to
a fault-free offline :class:`~repro.serve.session.MatcherSession`. The
faults may cost retries, shed requests or drop connections — they must
never change a prediction, because the paper's verdicts only transfer to
a deployment whose matching behaviour is exactly reproducible.

:func:`run_frontend_plan` builds a fresh session + front end, arms one
:class:`~repro.runtime.chaos.FaultPlan` drawn from
:func:`~repro.runtime.chaos.frontend_site_pool`, and drives a scripted
client (adds, then queries, reconnect-and-retry on any failure) over
real TCP. Divergence = an admitted ``ok`` answer differing from the
offline baseline, or a final record count that drifted. Kill plans
(``frontend:batch=kill``) SIGKILL the hosting process by design, so they
are rejected here and exercised through the subprocess CLI path instead
(see ``tests/serve/test_frontend_chaos.py`` and ``scripts/verify.sh``).
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro import obs
from repro.data.records import Record
from repro.runtime import faults
from repro.runtime.chaos import FaultPlan, generate_frontend_plans
from repro.serve.frontend import FrontendConfig, SocketFrontend
from repro.serve.loop import ServeLoop
from repro.serve.session import MatcherSession

#: Error codes a scripted client treats as transient and retries.
RETRYABLE_CODES = (
    "overloaded",
    "deadline_exceeded",
    "circuit_open",
    "internal",
)


def record_payload(record: Record) -> dict:
    """One :class:`Record` → its wire-format request payload."""
    return {
        "record_id": record.record_id,
        "source": record.source,
        "values": dict(record.values),
    }


class RetryClient:
    """A scripted client that reconnects and retries through faults."""

    def __init__(
        self, address: str, *, timeout_seconds: float = 10.0
    ) -> None:
        host, _, port = address.rpartition(":")
        self._target = (host, int(port))
        self.timeout_seconds = timeout_seconds
        self.retries = 0
        self._sock: socket.socket | None = None
        self._file = None

    def _connect(self) -> None:
        if self._sock is not None:
            return
        self._sock = socket.create_connection(
            self._target, timeout=self.timeout_seconds
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("r", encoding="utf-8")

    def _reset(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._file = None

    def request(self, payload: dict, *, attempts: int = 10) -> dict | None:
        """Send until an authoritative response arrives; ``None`` = gave up.

        Transient failures — a dropped connection, ``overloaded``,
        ``deadline_exceeded``, ``circuit_open``, ``internal`` — cost a
        retry with linear backoff. Anything else (an ``ok`` answer, a
        ``bad_request``) is authoritative and returned as-is.
        """
        for attempt in range(attempts):
            if attempt:
                self.retries += 1
                time.sleep(0.02 * attempt)
            try:
                self._connect()
                assert self._sock is not None and self._file is not None
                self._sock.sendall(
                    (json.dumps(payload) + "\n").encode("utf-8")
                )
                line = self._file.readline()
            except OSError:
                self._reset()
                continue
            if not line:
                self._reset()
                continue
            try:
                response = json.loads(line)
            except json.JSONDecodeError:
                self._reset()
                continue
            if response.get("event") == "drained":
                self._reset()
                continue
            if (
                not response.get("ok")
                and response.get("error") in RETRYABLE_CODES
            ):
                continue
            return response
        return None

    def close(self) -> None:
        self._reset()


@dataclass(frozen=True)
class FrontendPlanResult:
    """One executed front-end plan: parity divergences + retry cost."""

    plan: FaultPlan
    divergences: tuple[str, ...]
    answered: int
    unanswered: int
    retries: int

    @property
    def ok(self) -> bool:
        return not self.divergences


@dataclass(frozen=True)
class FrontendCampaignReport:
    """Every plan of one front-end chaos campaign."""

    seed: int
    results: tuple[FrontendPlanResult, ...]

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def divergent(self) -> tuple[FrontendPlanResult, ...]:
        return tuple(result for result in self.results if not result.ok)


def offline_baseline(
    session: MatcherSession,
    donors: Sequence[Record],
    probes: Sequence[Record],
    k: int,
) -> dict[str, dict]:
    """The fault-free ground truth: add donors, answer probes offline."""
    fresh = [r for r in donors if r.record_id not in session]
    session.add_records(fresh)
    results = session.query_batch(list(probes), k)
    return {
        probe.record_id: result.to_dict()
        for probe, result in zip(probes, results)
    }


def run_frontend_plan(
    plan: FaultPlan,
    session_factory: Callable[[], MatcherSession],
    donors: Sequence[Record],
    probes: Sequence[Record],
    *,
    k: int = 3,
    baseline: dict[str, dict] | None = None,
    config: FrontendConfig | None = None,
) -> FrontendPlanResult:
    """Drive the scripted workload under one armed plan; diff admitted answers.

    The workload: add ``donors`` (idempotent — the execution core
    deduplicates records already present, so a retried add is safe), then
    query every probe, retrying each request through transient failures.
    Every answered query must match ``baseline`` bit-for-bit.
    """
    if plan.kill_site is not None:
        raise ValueError(
            "kill plans SIGKILL the hosting process; run them through the "
            "subprocess CLI path, not in-process"
        )
    if baseline is None:
        baseline = offline_baseline(session_factory(), donors, probes, k)
    session = session_factory()
    expected_records = len(session) + sum(
        1 for r in donors if r.record_id not in session
    )
    core = ServeLoop(session)
    frontend = SocketFrontend(
        core, listen="127.0.0.1:0", config=config or FrontendConfig()
    )
    divergences: list[str] = []
    answered = 0
    unanswered = 0
    add_ok = False
    faults.reset()
    plan.arm()
    client: RetryClient | None = None
    try:
        with obs.span("chaos.frontend_plan", plan=plan.plan_id):
            frontend.start()
            client = RetryClient(frontend.address())
            response = client.request(
                {
                    "op": "add",
                    "id": "chaos-add",
                    "records": [record_payload(r) for r in donors],
                }
            )
            add_ok = bool(response and response.get("ok"))
            if not add_ok:
                divergences.append(
                    f"add never succeeded under {plan.describe()}: {response}"
                )
            for probe in probes:
                response = client.request(
                    {
                        "op": "query",
                        "id": f"q-{probe.record_id}",
                        "record": record_payload(probe),
                        "k": k,
                    }
                )
                if response is None or not response.get("ok"):
                    # Never admitted: allowed (shedding is the contract),
                    # but an admitted answer must be exact.
                    unanswered += 1
                    continue
                answered += 1
                expected = baseline[probe.record_id]
                if response.get("result") != expected:
                    divergences.append(
                        f"probe {probe.record_id}: admitted answer diverged "
                        f"from offline baseline under {plan.describe()}"
                    )
            # Final-state drift: a retried add must converge to exactly
            # the fault-free record count (dedup makes replays safe).
            if add_ok and len(session) != expected_records:
                divergences.append(
                    f"final record count {len(session)} != "
                    f"expected {expected_records} under {plan.describe()}"
                )
    finally:
        faults.reset()
        if client is not None:
            client.close()
        frontend.stop()
    obs.inc("chaos.frontend_plans")
    if divergences:
        obs.inc("chaos.divergences", len(divergences))
    return FrontendPlanResult(
        plan=plan,
        divergences=tuple(divergences),
        answered=answered,
        unanswered=unanswered,
        retries=client.retries if client is not None else 0,
    )


def run_frontend_campaign(
    session_factory: Callable[[], MatcherSession],
    donors: Sequence[Record],
    probes: Sequence[Record],
    *,
    n_plans: int = 6,
    seed: int = 0,
    k: int = 3,
    config: FrontendConfig | None = None,
) -> FrontendCampaignReport:
    """A seeded schedule of in-process plans over the frontend sites."""
    plans = generate_frontend_plans(n_plans, seed)
    baseline = offline_baseline(session_factory(), donors, probes, k)
    results = tuple(
        run_frontend_plan(
            plan,
            session_factory,
            donors,
            probes,
            k=k,
            baseline=baseline,
            config=config,
        )
        for plan in plans
    )
    return FrontendCampaignReport(seed=seed, results=results)
