"""Resident matching sessions: fit once, index once, answer queries forever.

The offline pipeline (:mod:`repro.experiments`) rebuilds everything per
run — fine for benchmark sweeps, wasteful for the paper's deployment
question ("how would this matcher behave as a service?"). This package
keeps a fitted matcher, a persistent ANN index and an incremental
:class:`~repro.text.feature_store.FeatureStore` resident in one
:class:`MatcherSession`:

* :meth:`MatcherSession.add_records` tokenizes/q-grams new records once
  and appends them to the index and incidence structures — never a full
  rebuild;
* :meth:`MatcherSession.query_batch` coalesces many queries into one ANN
  probe pass plus a single vectorized feature-kernel/predict call, and
  produces predictions bit-identical to the offline runner on the same
  candidate pairs;
* :meth:`MatcherSession.save` / :meth:`MatcherSession.load` snapshot a
  session onto the checksummed cache-envelope format;
* :func:`repro.serve.loop.serve_loop` (``python -m repro serve``) wraps a
  session in a JSONL request loop with per-phase latency histograms and
  graceful drain on SIGTERM;
* :class:`repro.serve.frontend.SocketFrontend` (``--listen HOST:PORT`` /
  ``--socket PATH``) serves many concurrent clients over TCP or unix
  sockets behind a bounded admission queue, per-request deadlines,
  per-client circuit breakers and a single-writer dispatcher — so
  concurrency never changes predictions.
"""

from __future__ import annotations

from repro.serve.frontend import FrontendConfig, SocketFrontend
from repro.serve.session import (
    MatcherSession,
    QueryResult,
    SessionConfig,
    open_session,
)

__all__ = [
    "FrontendConfig",
    "MatcherSession",
    "QueryResult",
    "SessionConfig",
    "SocketFrontend",
    "open_session",
]
