"""Difficulty-continuum construction (the paper's future-work extension).

The conclusions sketch the next step: "create a series of datasets that
cover the entire continuum of benchmark difficulty". The blocking recall
target of the Section VI methodology is exactly the dial: low targets admit
only easy positives and few near-miss negatives, high targets drag in the
hardest positives and denser nearest-neighbour negatives.

:func:`difficulty_continuum` runs the methodology across a ladder of recall
targets and returns one benchmark per rung, each with its a-priori
difficulty measured, so a user can pick — or sweep over — the difficulty
level their evaluation needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assessment import BenchmarkAssessment, assess_benchmark
from repro.core.methodology import NewBenchmark, create_benchmark
from repro.datasets.generator import SourcePair

#: Default recall rungs, easy to hard.
DEFAULT_RECALL_LADDER: tuple[float, ...] = (0.5, 0.7, 0.9)


@dataclass(frozen=True)
class ContinuumPoint:
    """One rung of the difficulty continuum."""

    recall_target: float
    benchmark: NewBenchmark
    assessment: BenchmarkAssessment

    @property
    def difficulty_score(self) -> float:
        """A scalar difficulty summary in [0, 1]: higher = harder.

        Averages the two a-priori signals: (1 - max linearity) and the mean
        complexity. Useful only for *ordering* rungs of the same source.
        """
        return (
            (1.0 - self.assessment.max_linearity) + self.assessment.complexity.mean
        ) / 2.0


def difficulty_continuum(
    sources: SourcePair,
    recall_ladder: tuple[float, ...] = DEFAULT_RECALL_LADDER,
    label_prefix: str | None = None,
    seed: int = 0,
    max_complexity_instances: int | None = 1000,
) -> list[ContinuumPoint]:
    """Build one benchmark per recall rung, assessed a-priori.

    Returns the points in ladder order (ascending recall). Duplicate or
    unsorted rungs are rejected so the continuum is well-defined.
    """
    if not recall_ladder:
        raise ValueError("recall_ladder must not be empty")
    if list(recall_ladder) != sorted(set(recall_ladder)):
        raise ValueError(
            f"recall_ladder must be strictly increasing, got {recall_ladder}"
        )
    if any(not 0.0 < rung <= 1.0 for rung in recall_ladder):
        raise ValueError(f"recall targets must be in (0, 1], got {recall_ladder}")

    prefix = label_prefix if label_prefix is not None else sources.name
    points: list[ContinuumPoint] = []
    for rung in recall_ladder:
        benchmark = create_benchmark(
            sources,
            label=f"{prefix}@pc{rung:.2f}",
            recall_target=rung,
            seed=seed,
        )
        assessment = assess_benchmark(
            benchmark.task,
            max_complexity_instances=max_complexity_instances,
        )
        points.append(
            ContinuumPoint(
                recall_target=rung, benchmark=benchmark, assessment=assessment
            )
        )
    return points
