"""The 17 complexity measures of Table I, reimplemented from scratch.

These follow Lorena et al., "How complex is your classification problem?"
and Barella et al., "Data complexity measures for imbalanced classification
tasks" — the sources behind the problexity package used by the paper. Every
measure maps a binary dataset to [0, 1] with **higher = more complex**.

The paper applies them to ER by representing each candidate pair as the
two-dimensional feature vector [CS, JS] (cosine and Jaccard token
similarity); :func:`pair_feature_matrix` produces exactly that. The
dimensionality measures (t2, t3, t4) and the redundant f4/l3 are excluded
for the reasons given in Section III-B.
"""

from repro.core.complexity.base import (
    ComplexityInputs,
    pair_feature_matrix,
    prepare_inputs,
)
from repro.core.complexity.class_balance import c1_entropy, c2_imbalance
from repro.core.complexity.feature_based import (
    f1_fisher,
    f1v_directional_fisher,
    f2_overlap_volume,
    f3_feature_efficiency,
)
from repro.core.complexity.linearity import l1_error_distance, l2_error_rate
from repro.core.complexity.neighborhood import (
    lsc_local_set_cardinality,
    n1_borderline_fraction,
    n2_intra_extra_ratio,
    n3_nearest_neighbor_error,
    n4_nearest_neighbor_nonlinearity,
    t1_hypersphere_fraction,
)
from repro.core.complexity.network import (
    cls_clustering_coefficient,
    den_density,
    hub_score,
)
from repro.core.complexity.profile import (
    MEASURE_GROUPS,
    MEASURE_NAMES,
    ComplexityProfile,
    complexity_profile,
)
from repro.core.complexity.gower import gower_distance_matrix

__all__ = [
    "MEASURE_GROUPS",
    "MEASURE_NAMES",
    "ComplexityInputs",
    "ComplexityProfile",
    "c1_entropy",
    "c2_imbalance",
    "cls_clustering_coefficient",
    "complexity_profile",
    "den_density",
    "f1_fisher",
    "f1v_directional_fisher",
    "f2_overlap_volume",
    "f3_feature_efficiency",
    "gower_distance_matrix",
    "hub_score",
    "l1_error_distance",
    "l2_error_rate",
    "lsc_local_set_cardinality",
    "n1_borderline_fraction",
    "n2_intra_extra_ratio",
    "n3_nearest_neighbor_error",
    "n4_nearest_neighbor_nonlinearity",
    "pair_feature_matrix",
    "prepare_inputs",
    "t1_hypersphere_fraction",
]
