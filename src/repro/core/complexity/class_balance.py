"""Class-balance complexity measures: c1, c2 (Table I-e).

Both score 0 on perfectly balanced data and approach 1 under extreme
imbalance — the regime where ER candidate sets usually live.
"""

from __future__ import annotations

import numpy as np

from repro.core.complexity.base import ComplexityInputs


def _class_proportions(inputs: ComplexityInputs) -> np.ndarray:
    __, counts = np.unique(inputs.labels, return_counts=True)
    return counts / inputs.n_samples


def c1_entropy(inputs: ComplexityInputs) -> float:
    """1 - normalized entropy of the class proportions."""
    proportions = _class_proportions(inputs)
    n_classes = len(proportions)
    if n_classes < 2:
        return 1.0
    entropy = -float(np.sum(proportions * np.log(proportions)))
    return 1.0 - entropy / np.log(n_classes)


def c2_imbalance(inputs: ComplexityInputs) -> float:
    """Imbalance-ratio measure of Tanwani & Farooq, as used by Lorena et al.

    IR = ((C-1)/C) * sum_c n_c / (n - n_c); c2 = 1 - 1/IR. Balanced binary
    data gives IR = 1 and c2 = 0.
    """
    __, counts = np.unique(inputs.labels, return_counts=True)
    n_classes = len(counts)
    if n_classes < 2:
        return 1.0
    n = inputs.n_samples
    ir = (n_classes - 1) / n_classes * float(
        np.sum(counts / (n - counts))
    )
    if ir <= 0:
        return 1.0
    return 1.0 - 1.0 / ir
