"""Gower distance for numeric feature matrices.

The neighbourhood and network complexity measures use the Gower distance
(Gower, 1971). For purely numeric features it reduces to the mean
range-normalized absolute difference per feature, which is what the [CS, JS]
pair representation needs.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_features


def gower_distance_matrix(features: np.ndarray) -> np.ndarray:
    """Pairwise Gower distances (numeric variant) in [0, 1].

    Each feature is range-normalized on the data at hand; constant features
    contribute zero distance.
    """
    array = check_features(features)
    n_samples, n_features = array.shape
    ranges = array.max(axis=0) - array.min(axis=0)
    active = ranges > 0.0
    if not np.any(active):
        return np.zeros((n_samples, n_samples))
    normalized = array[:, active] / ranges[active]
    distances = np.zeros((n_samples, n_samples))
    for j in range(normalized.shape[1]):
        column = normalized[:, j]
        distances += np.abs(column[:, None] - column[None, :])
    return distances / n_features
