"""Neighbourhood complexity measures: n1, n2, n3, n4, t1, lsc (Table I-c).

These characterize the decision boundary through nearest neighbours under
the Gower distance shared via :class:`ComplexityInputs`.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.csgraph import minimum_spanning_tree

from repro.core.complexity.base import ComplexityInputs


def _distances_with_inf_diagonal(inputs: ComplexityInputs) -> np.ndarray:
    distances = inputs.distances.copy()
    np.fill_diagonal(distances, np.inf)
    return distances


def _nearest_enemy_distance(inputs: ComplexityInputs) -> np.ndarray:
    """Distance from each point to its nearest point of the other class."""
    distances = inputs.distances
    labels = inputs.labels
    enemy = np.where(labels[:, None] != labels[None, :], distances, np.inf)
    return enemy.min(axis=1)


def n1_borderline_fraction(inputs: ComplexityInputs) -> float:
    """Fraction of points on an inter-class edge of the MST."""
    tree = minimum_spanning_tree(inputs.distances)
    rows, cols = tree.nonzero()
    borderline: set[int] = set()
    for a, b in zip(rows, cols):
        if inputs.labels[a] != inputs.labels[b]:
            borderline.add(int(a))
            borderline.add(int(b))
    return len(borderline) / inputs.n_samples


def n2_intra_extra_ratio(inputs: ComplexityInputs) -> float:
    """Ratio of intra-class to extra-class nearest-neighbour distances.

    r = sum(nearest same-class distance) / sum(nearest other-class
    distance); n2 = r / (1 + r) maps it into [0, 1).
    """
    distances = _distances_with_inf_diagonal(inputs)
    labels = inputs.labels
    same = np.where(labels[:, None] == labels[None, :], distances, np.inf)
    other = np.where(labels[:, None] != labels[None, :], distances, np.inf)
    intra = same.min(axis=1)
    extra = other.min(axis=1)
    intra = np.where(np.isfinite(intra), intra, 0.0)
    extra_sum = float(extra[np.isfinite(extra)].sum())
    if extra_sum == 0.0:
        return 1.0
    ratio = float(intra.sum()) / extra_sum
    return ratio / (1.0 + ratio)


def n3_nearest_neighbor_error(inputs: ComplexityInputs) -> float:
    """Leave-one-out 1-NN error rate under the Gower distance."""
    distances = _distances_with_inf_diagonal(inputs)
    nearest = np.argmin(distances, axis=1)
    return float(np.mean(inputs.labels[nearest] != inputs.labels))


def n4_nearest_neighbor_nonlinearity(
    inputs: ComplexityInputs, n_synthetic: int | None = None, seed: int = 0
) -> float:
    """1-NN error on synthetic points interpolated within each class.

    New points are convex combinations of random same-class pairs; a high
    error means the class regions are not convex — a non-linear boundary.
    """
    rng = np.random.default_rng(seed)
    if n_synthetic is None:
        n_synthetic = inputs.n_samples
    synthetic_features = np.empty((n_synthetic, inputs.n_features))
    synthetic_labels = np.empty(n_synthetic, dtype=np.int64)
    class_members = {
        cls: np.flatnonzero(inputs.labels == cls) for cls in (0, 1)
    }
    for index in range(n_synthetic):
        cls = int(rng.integers(0, 2))
        members = class_members[cls]
        if len(members) < 2:
            cls = 1 - cls
            members = class_members[cls]
        first, second = rng.choice(members, size=2, replace=len(members) < 2)
        alpha = rng.random()
        synthetic_features[index] = (
            alpha * inputs.features[first] + (1.0 - alpha) * inputs.features[second]
        )
        synthetic_labels[index] = cls

    # 1-NN classification of the synthetic points against the originals,
    # using the same range normalization as the Gower matrix. Chunked
    # broadcasting keeps memory bounded while staying vectorized.
    ranges = inputs.features.max(axis=0) - inputs.features.min(axis=0)
    active = ranges > 0
    if not np.any(active):
        return 0.0
    original = inputs.features[:, active] / ranges[active]
    synthetic = synthetic_features[:, active] / ranges[active]
    errors = 0
    chunk_size = max(1, 2_000_000 // max(1, original.shape[0]))
    for start in range(0, n_synthetic, chunk_size):
        chunk = synthetic[start : start + chunk_size]
        gower = np.abs(chunk[:, None, :] - original[None, :, :]).mean(axis=2)
        nearest = np.argmin(gower, axis=1)
        errors += int(
            np.sum(
                inputs.labels[nearest]
                != synthetic_labels[start : start + chunk_size]
            )
        )
    return errors / n_synthetic


def t1_hypersphere_fraction(inputs: ComplexityInputs) -> float:
    """Fraction of hyperspheres needed to cover the data.

    Each point's sphere radius is its nearest-enemy distance; spheres fully
    contained in a larger same-class sphere are absorbed. t1 = remaining
    spheres / n.
    """
    radii = _nearest_enemy_distance(inputs)
    distances = inputs.distances
    order = np.argsort(-radii, kind="stable")
    kept: list[int] = []
    absorbed = np.zeros(inputs.n_samples, dtype=bool)
    for index in order:
        if absorbed[index]:
            continue
        kept.append(int(index))
        # Absorb same-class points whose sphere lies inside this one.
        same_class = inputs.labels == inputs.labels[index]
        inside = distances[index] + radii <= radii[index] + 1e-12
        absorbed |= same_class & inside
        absorbed[index] = True
    return len(kept) / inputs.n_samples


def lsc_local_set_cardinality(inputs: ComplexityInputs) -> float:
    """Local-set average cardinality.

    The local set of x is every same-class point closer to x than x's
    nearest enemy; lsc = 1 - sum|LS| / n^2. Dense, pure neighbourhoods give
    large local sets and a low (simple) score.
    """
    radii = _nearest_enemy_distance(inputs)
    distances = inputs.distances
    same_class = inputs.labels[:, None] == inputs.labels[None, :]
    closer = distances < radii[:, None]
    local_set_sizes = (same_class & closer).sum(axis=1) - 1  # exclude self
    local_set_sizes = np.maximum(local_set_sizes, 0)
    return 1.0 - float(local_set_sizes.sum()) / (inputs.n_samples**2)
