"""Network complexity measures: den, cls, hub (Table I-d).

The dataset is modelled as an epsilon-NN graph: nodes are instances, edges
connect pairs with Gower distance below a threshold (0.15, the standard
setting), and — following the construction the paper describes — edges
between instances of *different* classes are pruned after building the
graph. All three scores are complements, so higher = more complex.

The measures are computed directly on the boolean adjacency matrix (dense
similarity data creates huge cliques, which make networkx's per-node
triangle iteration quadratic in degree; ``diag(A^3)`` with BLAS is orders
of magnitude faster). :func:`build_epsilon_graph` still exposes the graph
as a :mod:`networkx` object for exploratory use.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.complexity.base import ComplexityInputs

#: Standard epsilon for the Gower-distance graph (Lorena et al.).
EPSILON = 0.15


def epsilon_adjacency(
    inputs: ComplexityInputs, epsilon: float = EPSILON
) -> np.ndarray:
    """Boolean adjacency of the pruned epsilon-NN graph (no self loops)."""
    distances = inputs.distances
    same_class = inputs.labels[:, None] == inputs.labels[None, :]
    adjacency = (distances < epsilon) & same_class
    np.fill_diagonal(adjacency, False)
    return adjacency


def build_epsilon_graph(
    inputs: ComplexityInputs, epsilon: float = EPSILON
) -> nx.Graph:
    """The pruned epsilon-NN graph as a networkx object."""
    adjacency = epsilon_adjacency(inputs, epsilon)
    graph = nx.from_numpy_array(adjacency.astype(np.int8))
    return graph


def den_density(
    inputs: ComplexityInputs, adjacency: np.ndarray | None = None
) -> float:
    """1 - edge density of the pruned graph."""
    if adjacency is None:
        adjacency = epsilon_adjacency(inputs)
    n = adjacency.shape[0]
    if n < 2:
        return 1.0
    return 1.0 - float(adjacency.sum()) / (n * (n - 1))


def cls_clustering_coefficient(
    inputs: ComplexityInputs, adjacency: np.ndarray | None = None
) -> float:
    """1 - average clustering coefficient of the pruned graph.

    Per node: triangles / possible wedges, with ``triangles = diag(A^3)/2``
    and ``wedges = deg (deg - 1) / 2``; isolated and degree-1 nodes
    contribute 0, matching the networkx convention.
    """
    if adjacency is None:
        adjacency = epsilon_adjacency(inputs)
    n = adjacency.shape[0]
    if n == 0:
        return 1.0
    dense = adjacency.astype(np.float32)
    degrees = dense.sum(axis=1)
    paths_of_length_two = dense @ dense  # BLAS; einsum would loop in Python C
    triangles = (paths_of_length_two * dense).sum(axis=1) / 2.0
    wedges = degrees * (degrees - 1.0) / 2.0
    coefficients = np.divide(
        triangles, wedges, out=np.zeros(n, dtype=np.float64), where=wedges > 0
    )
    return 1.0 - float(coefficients.mean())


def hub_score(
    inputs: ComplexityInputs, adjacency: np.ndarray | None = None
) -> float:
    """1 - mean hub score of the pruned graph.

    On an undirected graph the HITS hub score coincides with the principal
    eigenvector of the adjacency matrix; isolated components get score 0.
    Dense same-class hubs push the mean up, so well-clustered (simple)
    datasets score low.
    """
    if adjacency is None:
        adjacency = epsilon_adjacency(inputs)
    n = adjacency.shape[0]
    if n == 0 or not adjacency.any():
        return 1.0
    dense = adjacency.astype(np.float64)
    vector = np.ones(n) / n
    for __ in range(100):
        candidate = dense @ vector
        norm = np.linalg.norm(candidate)
        if norm == 0:
            return 1.0
        candidate /= norm
        if np.allclose(candidate, vector, atol=1e-10):
            vector = candidate
            break
        vector = candidate
    scores = np.abs(vector)
    peak = scores.max()
    if peak > 0:
        scores = scores / peak
    return 1.0 - float(scores.mean())
