"""Shared preparation for the complexity measures.

All measures receive a :class:`ComplexityInputs` bundle: the validated
feature matrix, labels, and the (lazily computed) Gower distance matrix that
the neighbourhood and network measures share. Because several measures are
O(n^2), inputs can be stratified-subsampled to a size cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.complexity.gower import gower_distance_matrix
from repro.data.pairs import LabeledPairSet
from repro.ml.base import check_features, check_labels
from repro.text.similarity import cosine_similarity, jaccard_similarity

#: Default instance cap for the O(n^2) measures; stratified, seeded.
DEFAULT_MAX_INSTANCES = 1500


@dataclass
class ComplexityInputs:
    """Validated features/labels plus the shared distance matrix."""

    features: np.ndarray
    labels: np.ndarray
    _distances: np.ndarray | None = field(default=None, repr=False)

    @property
    def n_samples(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    @property
    def classes(self) -> np.ndarray:
        return np.unique(self.labels)

    @property
    def distances(self) -> np.ndarray:
        """The Gower distance matrix, computed on first use."""
        if self._distances is None:
            self._distances = gower_distance_matrix(self.features)
        return self._distances

    def class_mask(self, label: int) -> np.ndarray:
        return self.labels == label


def pair_feature_matrix(pairs: LabeledPairSet) -> np.ndarray:
    """The paper's two-dimensional representation: [CS, JS] per pair."""
    rows = []
    for pair, __ in pairs:
        left_tokens = pair.left.tokens()
        right_tokens = pair.right.tokens()
        rows.append(
            (
                cosine_similarity(left_tokens, right_tokens),
                jaccard_similarity(left_tokens, right_tokens),
            )
        )
    return np.asarray(rows, dtype=np.float64)


def schema_aware_feature_matrix(
    pairs: LabeledPairSet, attributes: tuple[str, ...]
) -> np.ndarray:
    """The schema-aware variant: [CS, JS] per attribute (2|A| features).

    Section III reports the schema-aware complexity setting showed no
    significant difference from the schema-agnostic one; this builder makes
    that claim checkable (``benchmarks/bench_ablation_schema.py``).
    """
    if not attributes:
        raise ValueError("schema-aware features need at least one attribute")
    rows = []
    for pair, __ in pairs:
        values: list[float] = []
        for attribute in attributes:
            left_tokens = pair.left.attribute_tokens(attribute)
            right_tokens = pair.right.attribute_tokens(attribute)
            values.append(cosine_similarity(left_tokens, right_tokens))
            values.append(jaccard_similarity(left_tokens, right_tokens))
        rows.append(values)
    return np.asarray(rows, dtype=np.float64)


def prepare_inputs(
    features: np.ndarray,
    labels: np.ndarray,
    max_instances: int | None = DEFAULT_MAX_INSTANCES,
    seed: int = 0,
) -> ComplexityInputs:
    """Validate and (if needed) stratified-subsample the inputs.

    Subsampling keeps the class proportions: each class is downsampled by
    the same global factor, with at least two instances per present class so
    every measure stays well-defined.
    """
    array = check_features(features)
    target = check_labels(labels, array.shape[0])
    if len(np.unique(target)) < 2:
        raise ValueError("complexity measures need both classes present")

    n_samples = array.shape[0]
    if max_instances is not None and n_samples > max_instances:
        rng = np.random.default_rng(seed)
        keep: list[int] = []
        factor = max_instances / n_samples
        for cls in (0, 1):
            members = np.flatnonzero(target == cls)
            n_keep = max(2, int(round(len(members) * factor)))
            n_keep = min(n_keep, len(members))
            keep.extend(
                rng.choice(members, size=n_keep, replace=False).tolist()
            )
        keep_array = np.sort(np.asarray(keep))
        array = array[keep_array]
        target = target[keep_array]
    return ComplexityInputs(features=array, labels=target)
