"""Linearity complexity measures: l1, l2 (Table I-b).

Both rest on a linear SVM fitted to the (standardized) data: l1 aggregates
the margin-violation distances, l2 is the plain training error rate.
"""

from __future__ import annotations

import numpy as np

from repro.core.complexity.base import ComplexityInputs
from repro.ml.scaling import StandardScaler
from repro.ml.svm import LinearSVM


def _fit_svm(inputs: ComplexityInputs) -> tuple[LinearSVM, np.ndarray]:
    scaler = StandardScaler()
    features = scaler.fit_transform(inputs.features)
    # 15 Pegasos epochs converge comfortably on the 2-d similarity features
    # these measures run on; more epochs only cost time.
    svm = LinearSVM(regularization=1e-3, epochs=15, balanced=False, seed=7)
    svm.fit(features, inputs.labels)
    return svm, features


def l1_error_distance(inputs: ComplexityInputs) -> float:
    """Sum of the error distances of margin violators, mapped to [0, 1).

    l1 = 1 - 1/(1 + mean hinge loss): zero when the classes are separated
    with margin, approaching 1 as violations grow.
    """
    svm, features = _fit_svm(inputs)
    violations = svm.margin_violations(features, inputs.labels)
    # Only count actual errors (hinge > 1 means misclassified); following
    # Lorena et al. the distances of incorrectly classified points are
    # averaged over the dataset.
    predictions = svm.predict(features)
    errors = violations[predictions != inputs.labels]
    mean_distance = float(errors.sum()) / inputs.n_samples
    return 1.0 - 1.0 / (1.0 + mean_distance)


def l2_error_rate(inputs: ComplexityInputs) -> float:
    """Training error rate of the linear SVM."""
    svm, features = _fit_svm(inputs)
    predictions = svm.predict(features)
    return float(np.mean(predictions != inputs.labels))
