"""Feature-based complexity measures: f1, f1v, f2, f3 (Table I-a).

These quantify how discriminative the individual (or linearly combined)
features are. All return values in [0, 1], higher = more complex.
"""

from __future__ import annotations

import numpy as np

from repro.core.complexity.base import ComplexityInputs


def _class_split(inputs: ComplexityInputs) -> tuple[np.ndarray, np.ndarray]:
    return (
        inputs.features[inputs.class_mask(0)],
        inputs.features[inputs.class_mask(1)],
    )


def f1_fisher(inputs: ComplexityInputs) -> float:
    """Maximum Fisher's discriminant ratio, mapped to [0, 1].

    For each feature: r = between-class scatter / within-class scatter;
    f1 = 1 / (1 + max_f r). Well-separated classes give a large ratio and a
    value near 0 (simple).
    """
    negatives, positives = _class_split(inputs)
    overall_mean = inputs.features.mean(axis=0)
    numerator = np.zeros(inputs.n_features)
    denominator = np.zeros(inputs.n_features)
    for group in (negatives, positives):
        group_mean = group.mean(axis=0)
        numerator += len(group) * (group_mean - overall_mean) ** 2
        denominator += ((group - group_mean) ** 2).sum(axis=0)
    ratios = np.divide(
        numerator,
        denominator,
        out=np.full(inputs.n_features, np.inf),
        where=denominator > 0,
    )
    return 1.0 / (1.0 + float(ratios.max()))


def f1v_directional_fisher(inputs: ComplexityInputs) -> float:
    """Directional-vector Fisher ratio (f1v).

    Projects onto the Fisher direction d = W^-1 (mu1 - mu0) and measures the
    separation along it: dF = (d'Bd)/(d'Wd); f1v = 1/(1+dF).
    """
    negatives, positives = _class_split(inputs)
    mean_negative = negatives.mean(axis=0)
    mean_positive = positives.mean(axis=0)
    difference = mean_positive - mean_negative

    proportion_negative = len(negatives) / inputs.n_samples
    proportion_positive = len(positives) / inputs.n_samples
    scatter_negative = np.cov(negatives.T, bias=True).reshape(
        inputs.n_features, inputs.n_features
    )
    scatter_positive = np.cov(positives.T, bias=True).reshape(
        inputs.n_features, inputs.n_features
    )
    within = (
        proportion_negative * scatter_negative
        + proportion_positive * scatter_positive
    )
    between = np.outer(difference, difference) * (
        proportion_negative * proportion_positive
    )
    direction = np.linalg.pinv(within) @ difference
    denominator = float(direction @ within @ direction)
    if denominator <= 0:
        return 0.0
    ratio = float(direction @ between @ direction) / denominator
    return 1.0 / (1.0 + ratio)


def _overlap_bounds(
    negatives: np.ndarray, positives: np.ndarray, feature: int
) -> tuple[float, float, float, float]:
    """(overlap_low, overlap_high, range_low, range_high) for one feature."""
    low = max(negatives[:, feature].min(), positives[:, feature].min())
    high = min(negatives[:, feature].max(), positives[:, feature].max())
    range_low = min(negatives[:, feature].min(), positives[:, feature].min())
    range_high = max(negatives[:, feature].max(), positives[:, feature].max())
    return low, high, range_low, range_high


def f2_overlap_volume(inputs: ComplexityInputs) -> float:
    """Volume of the per-feature class-overlap region (product over features)."""
    negatives, positives = _class_split(inputs)
    volume = 1.0
    for feature in range(inputs.n_features):
        low, high, range_low, range_high = _overlap_bounds(
            negatives, positives, feature
        )
        span = range_high - range_low
        if span <= 0:
            continue  # constant feature: no contribution
        volume *= max(0.0, high - low) / span
    return float(volume)


def f3_feature_efficiency(inputs: ComplexityInputs) -> float:
    """Complement of the best single-feature efficiency.

    A point is *separable* by a feature when it lies outside the class
    overlap interval of that feature; f3 = 1 - max_f (separable_f / n).
    """
    negatives, positives = _class_split(inputs)
    best_efficiency = 0.0
    for feature in range(inputs.n_features):
        low, high, __, __ = _overlap_bounds(negatives, positives, feature)
        values = inputs.features[:, feature]
        if high < low:
            separable = inputs.n_samples  # no overlap: fully efficient
        else:
            separable = int(np.sum((values < low) | (values > high)))
        best_efficiency = max(best_efficiency, separable / inputs.n_samples)
    return 1.0 - best_efficiency
