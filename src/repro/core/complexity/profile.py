"""ComplexityProfile: run all 17 measures on a benchmark.

This is the engine behind Figures 2 and 5 of the paper. The profile exposes
the individual scores, the per-group view of Table I and the mean score the
paper uses as the easy/challenging cut (mean < 0.40 = easy).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.complexity.base import (
    DEFAULT_MAX_INSTANCES,
    ComplexityInputs,
    pair_feature_matrix,
    prepare_inputs,
)
from repro.core.complexity.class_balance import c1_entropy, c2_imbalance
from repro.core.complexity.feature_based import (
    f1_fisher,
    f1v_directional_fisher,
    f2_overlap_volume,
    f3_feature_efficiency,
)
from repro.core.complexity.linearity import l1_error_distance, l2_error_rate
from repro.core.complexity.neighborhood import (
    lsc_local_set_cardinality,
    n1_borderline_fraction,
    n2_intra_extra_ratio,
    n3_nearest_neighbor_error,
    n4_nearest_neighbor_nonlinearity,
    t1_hypersphere_fraction,
)
from repro.core.complexity.network import (
    cls_clustering_coefficient,
    den_density,
    epsilon_adjacency,
    hub_score,
)
from repro.data.task import MatchingTask

MeasureFn = Callable[[ComplexityInputs], float]

#: All 17 measures in Table I order.
MEASURE_NAMES: tuple[str, ...] = (
    "f1", "f1v", "f2", "f3",
    "l1", "l2",
    "n1", "n2", "n3", "n4", "t1", "lsc",
    "den", "cls", "hub",
    "c1", "c2",
)

#: Table I grouping.
MEASURE_GROUPS: dict[str, tuple[str, ...]] = {
    "feature_based": ("f1", "f1v", "f2", "f3"),
    "linearity": ("l1", "l2"),
    "neighborhood": ("n1", "n2", "n3", "n4", "t1", "lsc"),
    "network": ("den", "cls", "hub"),
    "class_balance": ("c1", "c2"),
}

#: The paper's cut: mean complexity below this marks an easy benchmark.
EASY_MEAN_THRESHOLD = 0.40

_MEASURES: dict[str, MeasureFn] = {
    "f1": f1_fisher,
    "f1v": f1v_directional_fisher,
    "f2": f2_overlap_volume,
    "f3": f3_feature_efficiency,
    "l1": l1_error_distance,
    "l2": l2_error_rate,
    "n1": n1_borderline_fraction,
    "n2": n2_intra_extra_ratio,
    "n3": n3_nearest_neighbor_error,
    "n4": n4_nearest_neighbor_nonlinearity,
    "t1": t1_hypersphere_fraction,
    "lsc": lsc_local_set_cardinality,
    "c1": c1_entropy,
    "c2": c2_imbalance,
}


@dataclass(frozen=True)
class ComplexityProfile:
    """All 17 complexity scores for one benchmark."""

    scores: dict[str, float]

    def __post_init__(self) -> None:
        missing = set(MEASURE_NAMES) - set(self.scores)
        if missing:
            raise ValueError(f"profile is missing measures: {sorted(missing)}")

    @property
    def mean(self) -> float:
        return float(np.mean([self.scores[name] for name in MEASURE_NAMES]))

    def group_means(self) -> dict[str, float]:
        """Mean score per Table I group."""
        return {
            group: float(np.mean([self.scores[name] for name in names]))
            for group, names in MEASURE_GROUPS.items()
        }

    def is_easy(self, threshold: float = EASY_MEAN_THRESHOLD) -> bool:
        """The paper's a-priori verdict from complexity alone."""
        return self.mean < threshold

    def __getitem__(self, name: str) -> float:
        return self.scores[name]


def compute_profile(inputs: ComplexityInputs) -> ComplexityProfile:
    """Run all 17 measures on prepared inputs."""
    scores = {name: float(fn(inputs)) for name, fn in _MEASURES.items()}
    # Network measures share one adjacency build.
    adjacency = epsilon_adjacency(inputs)
    scores["den"] = float(den_density(inputs, adjacency))
    scores["cls"] = float(cls_clustering_coefficient(inputs, adjacency))
    scores["hub"] = float(hub_score(inputs, adjacency))
    clipped = {name: min(1.0, max(0.0, value)) for name, value in scores.items()}
    return ComplexityProfile(scores=clipped)


def complexity_profile(
    task: MatchingTask,
    max_instances: int | None = DEFAULT_MAX_INSTANCES,
    seed: int = 0,
    schema_aware: bool = False,
) -> ComplexityProfile:
    """Compute the profile of a matching task.

    The default (schema-agnostic) representation is the paper's [CS, JS]
    pair; ``schema_aware=True`` switches to per-attribute [CS, JS] features
    (2|A| dimensions), the variant Section III explored and dropped for
    showing no significant difference. All labeled pairs (T | V | C) are
    used, subsampled (stratified) to ``max_instances`` because half the
    measures are O(n^2).
    """
    from repro.core.complexity.base import schema_aware_feature_matrix

    pairs = task.all_pairs()
    if schema_aware:
        features = schema_aware_feature_matrix(pairs, task.attributes)
    else:
        features = pair_feature_matrix(pairs)
    inputs = prepare_inputs(
        features, pairs.labels, max_instances=max_instances, seed=seed
    )
    return compute_profile(inputs)
