"""The paper's primary contribution: benchmark difficulty assessment.

Four complementary approaches (Section III):

1. **Degree of linearity** (:mod:`repro.core.linearity`) — Algorithm 1: the
   best F1 a single similarity threshold can reach over all labeled pairs,
   with cosine and Jaccard token similarity.
2. **Complexity measures** (:mod:`repro.core.complexity`) — the 17 measures
   of Table I computed on the two-dimensional [CS, JS] feature vector.
3. **Non-linear boost (NLB)** and 4. **learning-based margin (LBM)**
   (:mod:`repro.core.practical`) — a-posteriori measures aggregated from
   matcher results.

:mod:`repro.core.assessment` combines the four into the paper's verdict: a
benchmark is *challenging* only if none of the measures marks it easy.
:mod:`repro.core.methodology` implements the Section VI pipeline that builds
new benchmarks from raw source pairs via tuned blocking.
"""

from repro.core.linearity import LinearityResult, degree_of_linearity
from repro.core.practical import (
    PracticalMeasures,
    learning_based_margin,
    non_linear_boost,
    practical_measures,
)
from repro.core.assessment import (
    AssessmentThresholds,
    BenchmarkAssessment,
    assess_benchmark,
)
from repro.core.methodology import NewBenchmark, create_benchmark
from repro.core.continuum import ContinuumPoint, difficulty_continuum

__all__ = [
    "ContinuumPoint",
    "difficulty_continuum",
    "AssessmentThresholds",
    "BenchmarkAssessment",
    "LinearityResult",
    "NewBenchmark",
    "PracticalMeasures",
    "assess_benchmark",
    "create_benchmark",
    "degree_of_linearity",
    "learning_based_margin",
    "non_linear_boost",
    "practical_measures",
]
