"""Train/test entity leakage: the critique the paper builds on.

The one prior examination of these benchmarks the paper credits (Wang et
al., [13]) showed that a "large portion of entities [is] shared by training
and testing sets, which results in low performance in the case of unseen
test entities". This module quantifies that leakage and provides an
*unseen-entity* re-split that eliminates it:

* :func:`entity_leakage` — the fraction of testing pairs that touch at
  least one record already seen in a training pair;
* :func:`unseen_entity_split` — a record-disjoint train/valid/test split:
  records are partitioned first, and each pair goes to the split that owns
  both of its records (pairs straddling partitions are dropped, which is
  the price of disjointness).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.pairs import LabeledPairSet
from repro.data.task import MatchingTask


@dataclass(frozen=True)
class LeakageReport:
    """Entity overlap between a task's training and testing sets."""

    seen_left_records: int
    seen_right_records: int
    testing_pairs: int
    testing_pairs_with_seen_record: int

    @property
    def leakage_rate(self) -> float:
        """Fraction of testing pairs touching a training record."""
        if self.testing_pairs == 0:
            return 0.0
        return self.testing_pairs_with_seen_record / self.testing_pairs


def _pair_records(pairs: LabeledPairSet) -> tuple[set[str], set[str]]:
    left_ids: set[str] = set()
    right_ids: set[str] = set()
    for pair, __ in pairs:
        left_ids.add(pair.left.record_id)
        right_ids.add(pair.right.record_id)
    return left_ids, right_ids


def entity_leakage(task: MatchingTask) -> LeakageReport:
    """Measure how many testing pairs reuse training-set records.

    Validation records count as "seen" too — any record the model selection
    pipeline observed.
    """
    train_left, train_right = _pair_records(task.training)
    valid_left, valid_right = _pair_records(task.validation)
    seen_left = train_left | valid_left
    seen_right = train_right | valid_right

    with_seen = 0
    for pair, __ in task.testing:
        if (
            pair.left.record_id in seen_left
            or pair.right.record_id in seen_right
        ):
            with_seen += 1
    return LeakageReport(
        seen_left_records=len(seen_left),
        seen_right_records=len(seen_right),
        testing_pairs=len(task.testing),
        testing_pairs_with_seen_record=with_seen,
    )


def unseen_entity_split(
    task: MatchingTask,
    ratios: tuple[int, int, int] = (3, 1, 1),
    seed: int = 0,
) -> MatchingTask:
    """Re-split a task so testing entities never appear in training.

    Left and right records (restricted to those participating in labeled
    pairs) are partitioned into train/valid/test buckets by the given
    ratios; a pair is kept only when both of its records fall in the same
    bucket. The resulting task has zero entity leakage by construction but
    fewer labeled pairs — exactly the trade-off [13] discusses.

    Raises ``ValueError`` when any resulting split would lose a class
    entirely (tiny tasks); callers can retry with another seed.
    """
    if len(ratios) != 3 or any(r <= 0 for r in ratios):
        raise ValueError(f"ratios must be three positive numbers, got {ratios}")
    merged = task.all_pairs()
    left_ids = sorted({pair.left.record_id for pair, __ in merged})
    right_ids = sorted({pair.right.record_id for pair, __ in merged})

    rng = np.random.default_rng(seed)
    total = sum(ratios)

    def assign(ids: list[str]) -> dict[str, int]:
        order = np.asarray(ids, dtype=object)
        rng.shuffle(order)
        first_cut = int(round(len(order) * ratios[0] / total))
        second_cut = first_cut + int(round(len(order) * ratios[1] / total))
        assignment: dict[str, int] = {}
        for position, record_id in enumerate(order):
            if position < first_cut:
                assignment[record_id] = 0
            elif position < second_cut:
                assignment[record_id] = 1
            else:
                assignment[record_id] = 2
        return assignment

    left_bucket = assign(left_ids)
    right_bucket = assign(right_ids)

    splits = [LabeledPairSet(), LabeledPairSet(), LabeledPairSet()]
    for pair, label in merged:
        bucket = left_bucket[pair.left.record_id]
        if right_bucket[pair.right.record_id] == bucket:
            splits[bucket].add(pair, label)

    for split_name, split in zip(("training", "validation", "testing"), splits):
        if split.positive_count == 0 or split.negative_count == 0:
            raise ValueError(
                f"unseen-entity split left the {split_name} set without "
                f"both classes; retry with another seed"
            )
    return MatchingTask(
        name=f"{task.name}-unseen",
        left=task.left,
        right=task.right,
        training=splits[0],
        validation=splits[1],
        testing=splits[2],
        metadata=dict(task.metadata),
    )
