"""The Section VI methodology for constructing new benchmarks.

Four steps:

1. apply a state-of-the-art blocking method (DeepBlocker) to a dataset with
   complete ground truth;
2. fine-tune it for a minimum recall (default 0.9) while maximizing
   precision — this fixes the class imbalance and difficulty;
3. randomly split the candidates into training/validation/testing (3:1:1),
   stratified on the ground-truth labels;
4. assess the result with the Section III measures (the caller's job, via
   :func:`repro.core.assessment.assess_benchmark`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.blocking.tuning import DEFAULT_K_LADDER, TunedBlocking, tune_deepblocker
from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.splits import split_three_way
from repro.data.task import MatchingTask
from repro.datasets.generator import SourcePair


@dataclass(frozen=True)
class NewBenchmark:
    """A benchmark produced by the methodology, plus its provenance."""

    label: str
    sources: SourcePair
    blocking: TunedBlocking
    task: MatchingTask

    @property
    def imbalance_ratio(self) -> float:
        """Positive fraction among the candidates (IR of Table V)."""
        return self.task.all_pairs().imbalance_ratio


def candidate_pairs_to_labeled(
    sources: SourcePair, candidates: frozenset[tuple[str, str]]
) -> LabeledPairSet:
    """Label blocking candidates against the complete ground truth.

    Candidates are ordered deterministically (sorted by key) so downstream
    splits are reproducible.
    """
    pairs = LabeledPairSet()
    for left_id, right_id in sorted(candidates):
        pair = RecordPair(sources.left.get(left_id), sources.right.get(right_id))
        pairs.add(pair, 1 if (left_id, right_id) in sources.matches else 0)
    return pairs


def create_benchmark(
    sources: SourcePair,
    label: str,
    recall_target: float = 0.9,
    ratios: tuple[int, int, int] = (3, 1, 1),
    k_ladder: tuple[int, ...] = DEFAULT_K_LADDER,
    seed: int = 0,
) -> NewBenchmark:
    """Run steps 1-3 of the methodology on one source pair."""
    tuned = tune_deepblocker(
        sources, recall_target=recall_target, k_ladder=k_ladder, seed=seed
    )
    labeled = candidate_pairs_to_labeled(sources, tuned.result.candidates)
    training, validation, testing = split_three_way(
        labeled, ratios=ratios, seed=seed + 1
    )
    task = MatchingTask(
        name=label,
        left=sources.left,
        right=sources.right,
        training=training,
        validation=validation,
        testing=testing,
        metadata={
            "vocabulary": sources.vocabulary,
            "blocking_config": tuned.config.describe(),
            "pair_completeness": tuned.pair_completeness,
            "pairs_quality": tuned.pairs_quality,
        },
    )
    return NewBenchmark(label=label, sources=sources, blocking=tuned, task=task)
