"""Four-approach benchmark assessment (the paper's overall verdict).

Section V's conclusion: "a benchmark dataset is challenging for entity
matching only if it is marked easy by none of our measures". The four easy
flags are:

* degree of linearity above 0.80 (either similarity) — linearly separable;
* mean complexity below 0.40 — simple patterns suffice;
* non-linear boost at or below 5% — linear matchers are competitive;
* learning-based margin at or below 5% — already (practically) solved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.complexity.profile import (
    EASY_MEAN_THRESHOLD,
    ComplexityProfile,
    complexity_profile,
)
from repro.core.linearity import LinearityResult, linearity_profile
from repro.core.practical import CHALLENGING_THRESHOLD, PracticalMeasures
from repro.data.task import MatchingTask


@dataclass(frozen=True)
class AssessmentThresholds:
    """The cut-offs of the paper's four easy flags."""

    linearity_easy: float = 0.80
    complexity_easy_mean: float = EASY_MEAN_THRESHOLD
    practical_challenging: float = CHALLENGING_THRESHOLD


@dataclass(frozen=True)
class BenchmarkAssessment:
    """The combined verdict for one benchmark."""

    task_name: str
    linearity: dict[str, LinearityResult]
    complexity: ComplexityProfile
    practical: PracticalMeasures | None = None
    thresholds: AssessmentThresholds = field(default_factory=AssessmentThresholds)

    @property
    def max_linearity(self) -> float:
        return max(result.max_f1 for result in self.linearity.values())

    @property
    def easy_by_linearity(self) -> bool:
        return self.max_linearity > self.thresholds.linearity_easy

    @property
    def easy_by_complexity(self) -> bool:
        return self.complexity.mean < self.thresholds.complexity_easy_mean

    @property
    def easy_by_practical(self) -> bool:
        """Easy when either practical measure fails the 5% bar.

        With no matcher results available — ``practical`` absent, or the
        all-NaN placeholder of a failed sweep — the flag is False: unknown
        is not evidence of easiness. Use :attr:`has_practical` to tell
        "measured and not easy" apart from "never measured".
        """
        if not self.has_practical:
            return False
        assert self.practical is not None
        return not self.practical.is_challenging(
            self.thresholds.practical_challenging
        )

    @property
    def has_practical(self) -> bool:
        """True when real (non-NaN) practical measures are attached."""
        return self.practical is not None and self.practical.is_measured

    @property
    def is_challenging(self) -> bool:
        """True only when no measure marks the benchmark easy."""
        return not (
            self.easy_by_linearity
            or self.easy_by_complexity
            or self.easy_by_practical
        )

    def summary(self) -> dict[str, object]:
        """Flat dict rendering (used by reports and tests)."""
        row: dict[str, object] = {
            "task": self.task_name,
            "linearity_cosine": self.linearity["cosine"].max_f1,
            "linearity_jaccard": self.linearity["jaccard"].max_f1,
            "complexity_mean": self.complexity.mean,
            "easy_by_linearity": self.easy_by_linearity,
            "easy_by_complexity": self.easy_by_complexity,
            "has_practical": self.has_practical,
            "challenging": self.is_challenging,
        }
        if self.practical is not None:
            row["nlb"] = self.practical.non_linear_boost
            row["lbm"] = self.practical.learning_based_margin
            row["easy_by_practical"] = self.easy_by_practical
        return row


def assess_benchmark(
    task: MatchingTask,
    practical: PracticalMeasures | None = None,
    thresholds: AssessmentThresholds | None = None,
    max_complexity_instances: int | None = 1500,
) -> BenchmarkAssessment:
    """Run the a-priori measures (and fold in a-posteriori ones if given)."""
    return BenchmarkAssessment(
        task_name=task.name,
        linearity=linearity_profile(task),
        complexity=complexity_profile(
            task, max_instances=max_complexity_instances
        ),
        practical=practical,
        thresholds=thresholds if thresholds is not None else AssessmentThresholds(),
    )
