"""A-posteriori practical measures: non-linear boost and learning-based margin.

Section III-C: given the test F1 of every matcher on a benchmark,

* **NLB** = max F1 over all non-linear (ML + DL) matchers minus max F1 over
  all linear matchers. Near zero means the classes are (almost) linearly
  separable — the benchmark cannot showcase complex matchers.
* **LBM** = 1 - max F1 over *all* learning-based matchers. Near zero means
  the benchmark is already solved — no room for improvement.

The paper's rule of thumb: a challenging benchmark needs both measures above
5% (ideally 10%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: The paper's minimum for a benchmark to count as challenging.
CHALLENGING_THRESHOLD = 0.05


@dataclass(frozen=True)
class PracticalMeasures:
    """NLB and LBM for one benchmark, with the contributing maxima.

    A sweep that failed (entirely, or for a whole matcher family) yields
    the all-NaN :func:`unmeasured_practical` instance: ``is_measured`` is
    False and neither ``is_challenging`` nor the assessment layer may
    read anything into the values — unknown is not evidence.
    """

    non_linear_boost: float
    learning_based_margin: float
    best_non_linear_f1: float
    best_linear_f1: float

    @property
    def is_measured(self) -> bool:
        """True when the measures come from real scores (no NaN/inf)."""
        return all(
            math.isfinite(value)
            for value in (
                self.non_linear_boost,
                self.learning_based_margin,
                self.best_non_linear_f1,
                self.best_linear_f1,
            )
        )

    @property
    def best_overall_f1(self) -> float:
        return max(self.best_non_linear_f1, self.best_linear_f1)

    def is_challenging(self, threshold: float = CHALLENGING_THRESHOLD) -> bool:
        """True when both measures exceed *threshold* (paper: 5%).

        Unmeasured (NaN) instances return False here, but callers judging
        easiness must check :attr:`is_measured` first — "not challenging"
        for lack of data is not the same claim as "easy".
        """
        if not self.is_measured:
            return False
        return (
            self.non_linear_boost > threshold
            and self.learning_based_margin > threshold
        )


def unmeasured_practical() -> PracticalMeasures:
    """The all-NaN placeholder for a sweep that produced no usable scores."""
    nan = float("nan")
    return PracticalMeasures(
        non_linear_boost=nan,
        learning_based_margin=nan,
        best_non_linear_f1=nan,
        best_linear_f1=nan,
    )


def _validate_scores(scores: dict[str, float], label: str) -> None:
    if not scores:
        raise ValueError(f"no {label} matcher scores provided")
    for name, value in scores.items():
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{label} matcher {name!r} has F1 {value} outside [0, 1]")


def non_linear_boost(
    non_linear_f1: dict[str, float], linear_f1: dict[str, float]
) -> float:
    """NLB from per-matcher F1 dicts (negative when linear matchers win).

    The paper keeps the sign: on D_s5 the best linear algorithms outperform
    the best non-linear ones, which argues against the dataset.
    """
    _validate_scores(non_linear_f1, "non-linear")
    _validate_scores(linear_f1, "linear")
    return max(non_linear_f1.values()) - max(linear_f1.values())


def learning_based_margin(all_f1: dict[str, float]) -> float:
    """LBM = 1 - best F1 among all learning-based matchers."""
    _validate_scores(all_f1, "learning-based")
    return 1.0 - max(all_f1.values())


def practical_measures(
    non_linear_f1: dict[str, float], linear_f1: dict[str, float]
) -> PracticalMeasures:
    """Compute both aggregate measures from the two matcher-family results."""
    boost = non_linear_boost(non_linear_f1, linear_f1)
    combined = {**non_linear_f1, **linear_f1}
    return PracticalMeasures(
        non_linear_boost=boost,
        learning_based_margin=learning_based_margin(combined),
        best_non_linear_f1=max(non_linear_f1.values()),
        best_linear_f1=max(linear_f1.values()),
    )
