"""Degree of linearity — Algorithm 1 of the paper.

For every labeled pair in T | V | C the schema-agnostic token similarity is
computed (cosine or Jaccard over the distinct lower-cased tokens of all
attribute values); a threshold sweep over [0.01, 0.99] step 0.01 finds the
F1-optimal linear separation. The maximum F1 is the dataset's degree of
linearity; high values mean a linear classifier already solves the
benchmark, so it cannot differentiate complex matchers.
"""

from __future__ import annotations

from collections.abc import Callable, Set
from dataclasses import dataclass

import numpy as np

from repro.data.pairs import LabeledPairSet
from repro.data.task import MatchingTask
from repro.text.feature_store import FeatureStore, store_for_task
from repro.text.similarity import cosine_similarity, jaccard_similarity

SimilarityFn = Callable[[Set[str], Set[str]], float]

#: The two similarity measures considered by the paper (Dice and overlap are
#: monotone in these and add no information, as Section III-A notes).
SIMILARITIES: dict[str, SimilarityFn] = {
    "cosine": cosine_similarity,
    "jaccard": jaccard_similarity,
}

#: Kernel measure name per known similarity callable — these dispatch to
#: the vectorized path of :mod:`repro.text.kernels`; any other callable
#: falls back to the per-pair scalar loop (the parity oracle).
_VECTOR_MEASURES: dict[SimilarityFn, str] = {
    cosine_similarity: "cosine",
    jaccard_similarity: "jaccard",
}

#: Threshold returned when *no* threshold in the sweep produces a single
#: true positive (an all-negative fold, or scores entirely below the
#: grid). It sits above every attainable score, so a matcher fitted on a
#: degenerate fold predicts all-negative — ``score >= inf`` is never
#: true — instead of the old 0.0 sentinel, which made ``scores >= 0.0``
#: classify *everything* as a match.
DEGENERATE_THRESHOLD: float = float("inf")


@dataclass(frozen=True)
class LinearityResult:
    """Output of Algorithm 1 for one (dataset, similarity) combination."""

    similarity: str
    max_f1: float
    best_threshold: float


def best_threshold_f1(
    scores: np.ndarray,
    labels: np.ndarray,
    thresholds: np.ndarray | None = None,
) -> tuple[float, float]:
    """Sweep thresholds and return (max F1, best threshold).

    Vectorized equivalent of lines 5-12 of Algorithm 1: scores are sorted
    once, and for every threshold the confusion counts follow from the
    number of positives/negatives above it. Ties keep the lowest threshold,
    like the sequential sweep of the paper (strict improvement check).

    When every threshold degenerates (no positives in *labels*, or no
    score reaches the grid) the result is
    ``(0.0, DEGENERATE_THRESHOLD)`` — a threshold above the score range,
    so thresholding with it predicts all-negative.
    """
    if thresholds is None:
        thresholds = np.round(np.arange(0.01, 1.00, 0.01), 2)
    score_array = np.asarray(scores, dtype=np.float64)
    label_array = np.asarray(labels)
    if score_array.shape != label_array.shape:
        raise ValueError(
            f"scores and labels differ in shape: "
            f"{score_array.shape} vs {label_array.shape}"
        )
    total_positives = int(label_array.sum())

    order = np.argsort(score_array, kind="stable")
    sorted_scores = score_array[order]
    sorted_labels = label_array[order]
    # positives with score >= t  =  total_positives - positives below t
    cumulative_positives = np.concatenate(([0], np.cumsum(sorted_labels)))

    best_f1 = 0.0
    best_threshold: float | None = None
    for threshold in thresholds:
        cut = int(np.searchsorted(sorted_scores, threshold, side="left"))
        predicted_positive = len(score_array) - cut
        true_positive = total_positives - int(cumulative_positives[cut])
        if predicted_positive == 0 or total_positives == 0:
            continue
        precision = true_positive / predicted_positive
        recall = true_positive / total_positives
        if precision + recall == 0:
            continue
        # Any threshold reaching this point has f1 > 0, so the strict
        # improvement below always selects at least one of them.
        f1 = 2.0 * precision * recall / (precision + recall)
        if f1 > best_f1:
            best_f1 = f1
            best_threshold = float(threshold)
    if best_threshold is None:
        return 0.0, DEGENERATE_THRESHOLD
    return best_f1, best_threshold


def _batch_scores(
    store: FeatureStore,
    pairs: LabeledPairSet,
    measure: str,
    attribute: str | None = None,
) -> np.ndarray:
    """One similarity column over *pairs*, batched through *store*."""
    pair_list = pairs.pairs
    spec = f"pairsim:{measure}" if attribute is None else (
        f"pairsim:{measure}:{attribute}"
    )
    view = ("tokens", attribute)
    column = store.matrix(
        spec=spec,
        pairs=pair_list,
        names=(spec,),
        compute=lambda: store.set_similarities(
            pair_list, view, measures=(measure,)
        ),
    )
    return column.reshape(len(pair_list))


def pair_similarities(
    pairs: LabeledPairSet,
    similarity: SimilarityFn,
    store: FeatureStore | None = None,
) -> np.ndarray:
    """Schema-agnostic token similarity per labeled pair (lines 2-4).

    The paper's two measures dispatch to the vectorized kernels (pass the
    task's *store* to reuse its token rows); any other callable runs the
    per-pair scalar loop, which doubles as the parity oracle.
    """
    measure = _VECTOR_MEASURES.get(similarity)
    if measure is not None:
        return _batch_scores(store or FeatureStore(), pairs, measure)
    return np.asarray(
        [
            similarity(pair.left.tokens(), pair.right.tokens())
            for pair, __ in pairs
        ],
        dtype=np.float64,
    )


def degree_of_linearity(
    task: MatchingTask, similarity: str = "cosine"
) -> LinearityResult:
    """Run Algorithm 1 on a matching task.

    Parameters
    ----------
    task:
        The benchmark; all of T | V | C is used (the measure characterizes
        the dataset, not a trained model).
    similarity:
        ``"cosine"`` or ``"jaccard"``.
    """
    if similarity not in SIMILARITIES:
        raise KeyError(
            f"unknown similarity {similarity!r}; known: {sorted(SIMILARITIES)}"
        )
    merged = task.all_pairs()
    scores = pair_similarities(
        merged, SIMILARITIES[similarity], store=store_for_task(task)
    )
    max_f1, threshold = best_threshold_f1(scores, merged.labels)
    return LinearityResult(
        similarity=similarity, max_f1=max_f1, best_threshold=threshold
    )


def linearity_profile(task: MatchingTask) -> dict[str, LinearityResult]:
    """Both degrees of linearity (the two bars of Figure 1 per dataset)."""
    return {
        name: degree_of_linearity(task, name) for name in SIMILARITIES
    }


def schema_aware_linearity(
    task: MatchingTask, similarity: str = "cosine"
) -> dict[str, LinearityResult]:
    """Per-attribute degree of linearity (the schema-aware setting).

    Section III reports that schema-aware variants of the theoretical
    measures showed no significant difference from the schema-agnostic
    setting; this function computes them anyway — one threshold sweep per
    attribute, over that attribute's token similarity — so the claim can be
    checked (see ``benchmarks/bench_ablation_schema.py``).

    Returns a mapping attribute -> :class:`LinearityResult`; the *best*
    attribute's F1 is the schema-aware degree of linearity.
    """
    if similarity not in SIMILARITIES:
        raise KeyError(
            f"unknown similarity {similarity!r}; known: {sorted(SIMILARITIES)}"
        )
    measure = _VECTOR_MEASURES[SIMILARITIES[similarity]]
    store = store_for_task(task)
    merged = task.all_pairs()
    labels = merged.labels
    results: dict[str, LinearityResult] = {}
    for attribute in task.attributes:
        scores = _batch_scores(store, merged, measure, attribute)
        max_f1, threshold = best_threshold_f1(scores, labels)
        results[attribute] = LinearityResult(
            similarity=f"{similarity}:{attribute}",
            max_f1=max_f1,
            best_threshold=threshold,
        )
    return results
