"""Degree of linearity — Algorithm 1 of the paper.

For every labeled pair in T | V | C the schema-agnostic token similarity is
computed (cosine or Jaccard over the distinct lower-cased tokens of all
attribute values); a threshold sweep over [0.01, 0.99] step 0.01 finds the
F1-optimal linear separation. The maximum F1 is the dataset's degree of
linearity; high values mean a linear classifier already solves the
benchmark, so it cannot differentiate complex matchers.
"""

from __future__ import annotations

from collections.abc import Callable, Set
from dataclasses import dataclass

import numpy as np

from repro.data.pairs import LabeledPairSet
from repro.data.task import MatchingTask
from repro.text.similarity import cosine_similarity, jaccard_similarity

SimilarityFn = Callable[[Set[str], Set[str]], float]

#: The two similarity measures considered by the paper (Dice and overlap are
#: monotone in these and add no information, as Section III-A notes).
SIMILARITIES: dict[str, SimilarityFn] = {
    "cosine": cosine_similarity,
    "jaccard": jaccard_similarity,
}


@dataclass(frozen=True)
class LinearityResult:
    """Output of Algorithm 1 for one (dataset, similarity) combination."""

    similarity: str
    max_f1: float
    best_threshold: float


def best_threshold_f1(
    scores: np.ndarray,
    labels: np.ndarray,
    thresholds: np.ndarray | None = None,
) -> tuple[float, float]:
    """Sweep thresholds and return (max F1, best threshold).

    Vectorized equivalent of lines 5-12 of Algorithm 1: scores are sorted
    once, and for every threshold the confusion counts follow from the
    number of positives/negatives above it. Ties keep the lowest threshold,
    like the sequential sweep of the paper (strict improvement check).
    """
    if thresholds is None:
        thresholds = np.round(np.arange(0.01, 1.00, 0.01), 2)
    score_array = np.asarray(scores, dtype=np.float64)
    label_array = np.asarray(labels)
    if score_array.shape != label_array.shape:
        raise ValueError(
            f"scores and labels differ in shape: "
            f"{score_array.shape} vs {label_array.shape}"
        )
    total_positives = int(label_array.sum())

    order = np.argsort(score_array, kind="stable")
    sorted_scores = score_array[order]
    sorted_labels = label_array[order]
    # positives with score >= t  =  total_positives - positives below t
    cumulative_positives = np.concatenate(([0], np.cumsum(sorted_labels)))

    best_f1 = 0.0
    best_threshold = 0.0
    for threshold in thresholds:
        cut = int(np.searchsorted(sorted_scores, threshold, side="left"))
        predicted_positive = len(score_array) - cut
        true_positive = total_positives - int(cumulative_positives[cut])
        if predicted_positive == 0 or total_positives == 0:
            continue
        precision = true_positive / predicted_positive
        recall = true_positive / total_positives
        if precision + recall == 0:
            continue
        f1 = 2.0 * precision * recall / (precision + recall)
        if f1 > best_f1:
            best_f1 = f1
            best_threshold = float(threshold)
    return best_f1, best_threshold


def pair_similarities(
    pairs: LabeledPairSet, similarity: SimilarityFn
) -> np.ndarray:
    """Schema-agnostic token similarity per labeled pair (lines 2-4)."""
    return np.asarray(
        [
            similarity(pair.left.tokens(), pair.right.tokens())
            for pair, __ in pairs
        ],
        dtype=np.float64,
    )


def degree_of_linearity(
    task: MatchingTask, similarity: str = "cosine"
) -> LinearityResult:
    """Run Algorithm 1 on a matching task.

    Parameters
    ----------
    task:
        The benchmark; all of T | V | C is used (the measure characterizes
        the dataset, not a trained model).
    similarity:
        ``"cosine"`` or ``"jaccard"``.
    """
    if similarity not in SIMILARITIES:
        raise KeyError(
            f"unknown similarity {similarity!r}; known: {sorted(SIMILARITIES)}"
        )
    merged = task.all_pairs()
    scores = pair_similarities(merged, SIMILARITIES[similarity])
    max_f1, threshold = best_threshold_f1(scores, merged.labels)
    return LinearityResult(
        similarity=similarity, max_f1=max_f1, best_threshold=threshold
    )


def linearity_profile(task: MatchingTask) -> dict[str, LinearityResult]:
    """Both degrees of linearity (the two bars of Figure 1 per dataset)."""
    return {
        name: degree_of_linearity(task, name) for name in SIMILARITIES
    }


def schema_aware_linearity(
    task: MatchingTask, similarity: str = "cosine"
) -> dict[str, LinearityResult]:
    """Per-attribute degree of linearity (the schema-aware setting).

    Section III reports that schema-aware variants of the theoretical
    measures showed no significant difference from the schema-agnostic
    setting; this function computes them anyway — one threshold sweep per
    attribute, over that attribute's token similarity — so the claim can be
    checked (see ``benchmarks/bench_ablation_schema.py``).

    Returns a mapping attribute -> :class:`LinearityResult`; the *best*
    attribute's F1 is the schema-aware degree of linearity.
    """
    if similarity not in SIMILARITIES:
        raise KeyError(
            f"unknown similarity {similarity!r}; known: {sorted(SIMILARITIES)}"
        )
    similarity_fn = SIMILARITIES[similarity]
    merged = task.all_pairs()
    labels = merged.labels
    results: dict[str, LinearityResult] = {}
    for attribute in task.attributes:
        scores = np.asarray(
            [
                similarity_fn(
                    pair.left.attribute_tokens(attribute),
                    pair.right.attribute_tokens(attribute),
                )
                for pair, __ in merged
            ]
        )
        max_f1, threshold = best_threshold_f1(scores, labels)
        results[attribute] = LinearityResult(
            similarity=f"{similarity}:{attribute}",
            max_f1=max_f1,
            best_threshold=threshold,
        )
    return results
