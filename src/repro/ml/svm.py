"""Linear support vector machine trained with the Pegasos algorithm.

Serves two roles from the paper: the ``Magellan-SVM`` matcher head
(Section IV-B) and the linear-SVM classifier behind the l1/l2 complexity
measures of Table I (error distance of a linear program / error rate of a
linear SVM).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_features, check_labels


class LinearSVM:
    """Soft-margin linear SVM (hinge loss, L2 regularization, Pegasos SGD).

    Parameters
    ----------
    regularization:
        The Pegasos ``lambda``; larger means a wider margin / more
        regularization.
    epochs:
        Passes over the (shuffled) training set.
    balanced:
        Weight hinge updates inversely to class frequency.
    seed:
        Shuffling seed; the fit is deterministic given the seed.
    """

    def __init__(
        self,
        regularization: float = 1e-3,
        epochs: int = 60,
        balanced: bool = True,
        seed: int = 0,
    ) -> None:
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if regularization <= 0:
            raise ValueError(f"regularization must be > 0, got {regularization}")
        self.regularization = regularization
        self.epochs = epochs
        self.balanced = balanced
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSVM":
        array = check_features(features)
        binary = check_labels(labels, array.shape[0])
        target = np.where(binary == 1, 1.0, -1.0)
        n_samples, n_features = array.shape

        if self.balanced:
            positives = max(int(binary.sum()), 1)
            negatives = max(n_samples - int(binary.sum()), 1)
            class_weight = {
                1.0: n_samples / (2.0 * positives),
                -1.0: n_samples / (2.0 * negatives),
            }
        else:
            class_weight = {1.0: 1.0, -1.0: 1.0}

        rng = np.random.default_rng(self.seed)
        weights = np.zeros(n_features)
        bias = 0.0
        step = 0
        for __ in range(self.epochs):
            order = rng.permutation(n_samples)
            for index in order:
                step += 1
                eta = 1.0 / (self.regularization * step)
                margin = target[index] * (array[index] @ weights + bias)
                weights *= 1.0 - eta * self.regularization
                if margin < 1.0:
                    scale = eta * class_weight[target[index]] * target[index]
                    weights += scale * array[index]
                    bias += scale
        self.weights_ = weights
        self.bias_ = float(bias)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed distance-like scores ``Xw + b``."""
        if self.weights_ is None:
            raise RuntimeError("LinearSVM is not fitted; call fit() first")
        array = check_features(features)
        if array.shape[1] != self.weights_.shape[0]:
            raise ValueError(
                f"expected {self.weights_.shape[0]} features, got {array.shape[1]}"
            )
        return array @ self.weights_ + self.bias_

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.decision_function(features) >= 0.0).astype(np.int64)

    def margin_violations(
        self, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Per-sample hinge losses ``max(0, 1 - y * f(x))``.

        The l1 complexity measure sums these error distances.
        """
        binary = check_labels(np.asarray(labels), np.asarray(features).shape[0])
        target = np.where(binary == 1, 1.0, -1.0)
        scores = self.decision_function(features)
        return np.maximum(0.0, 1.0 - target * scores)
