"""k-nearest-neighbour classifier.

Beyond its use as a baseline, the 1-NN variant is the engine behind the
neighbourhood complexity measures n1-n4 (Table I), which characterize the
decision boundary through nearest neighbours under a supplied distance.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.ml.base import check_features, check_labels

DistanceFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def euclidean_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distance matrix between row sets *a* and *b*."""
    a2 = np.sum(a * a, axis=1)[:, None]
    b2 = np.sum(b * b, axis=1)[None, :]
    squared = a2 + b2 - 2.0 * (a @ b.T)
    return np.sqrt(np.maximum(squared, 0.0))


class KNeighborsClassifier:
    """Majority-vote k-NN with a pluggable pairwise distance function."""

    def __init__(self, k: int = 1, distance: DistanceFn = euclidean_distances) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.distance = distance
        self._features: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "KNeighborsClassifier":
        array = check_features(features)
        self._labels = check_labels(labels, array.shape[0])
        self._features = array
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Fraction of positive labels among the k nearest training points."""
        if self._features is None or self._labels is None:
            raise RuntimeError("KNeighborsClassifier is not fitted; call fit() first")
        array = check_features(features)
        if array.shape[1] != self._features.shape[1]:
            raise ValueError(
                f"expected {self._features.shape[1]} features, got {array.shape[1]}"
            )
        k = min(self.k, self._features.shape[0])
        distances = self.distance(array, self._features)
        neighbor_ids = np.argpartition(distances, kth=k - 1, axis=1)[:, :k]
        return self._labels[neighbor_ids].mean(axis=1)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)

    def leave_one_out_error(self) -> float:
        """1-NN leave-one-out error rate on the training set.

        This is exactly the n3 complexity measure: each training point is
        classified by its nearest *other* training point.
        """
        if self._features is None or self._labels is None:
            raise RuntimeError("KNeighborsClassifier is not fitted; call fit() first")
        n = self._features.shape[0]
        if n < 2:
            return 0.0
        distances = self.distance(self._features, self._features)
        np.fill_diagonal(distances, np.inf)
        nearest = np.argmin(distances, axis=1)
        return float(np.mean(self._labels[nearest] != self._labels))
