"""L2-regularized logistic regression trained by full-batch gradient descent.

This is the ``Magellan-LR`` head (Section IV-B) and, being the canonical
linear probabilistic classifier, a useful baseline throughout the library.
Class imbalance — endemic in ER candidate sets — is handled with optional
inverse-frequency sample weights.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_features, check_labels


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clip to avoid overflow in exp; 500 is far beyond float64 saturation.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500.0, 500.0)))


class LogisticRegression:
    """Binary logistic regression.

    Parameters
    ----------
    learning_rate:
        Gradient-descent step size.
    epochs:
        Number of full-batch iterations.
    l2:
        L2 regularization strength (applied to weights, not the bias).
    balanced:
        If true, samples are weighted inversely to class frequency, which is
        the sensible default on heavily imbalanced candidate sets.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        epochs: int = 300,
        l2: float = 1e-4,
        balanced: bool = True,
    ) -> None:
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.balanced = balanced
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        array = check_features(features)
        target = check_labels(labels, array.shape[0]).astype(np.float64)
        n_samples, n_features = array.shape

        if self.balanced:
            positives = target.sum()
            negatives = n_samples - positives
            if positives > 0 and negatives > 0:
                sample_weight = np.where(
                    target == 1.0, n_samples / (2.0 * positives),
                    n_samples / (2.0 * negatives),
                )
            else:
                sample_weight = np.ones(n_samples)
        else:
            sample_weight = np.ones(n_samples)
        weight_total = sample_weight.sum()

        weights = np.zeros(n_features)
        bias = 0.0
        for __ in range(self.epochs):
            predictions = _sigmoid(array @ weights + bias)
            error = (predictions - target) * sample_weight
            gradient_w = array.T @ error / weight_total + self.l2 * weights
            gradient_b = error.sum() / weight_total
            weights -= self.learning_rate * gradient_w
            bias -= self.learning_rate * gradient_b
        self.weights_ = weights
        self.bias_ = float(bias)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw linear scores ``Xw + b``."""
        if self.weights_ is None:
            raise RuntimeError("LogisticRegression is not fitted; call fit() first")
        array = check_features(features)
        if array.shape[1] != self.weights_.shape[0]:
            raise ValueError(
                f"expected {self.weights_.shape[0]} features, got {array.shape[1]}"
            )
        return array @ self.weights_ + self.bias_

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each sample."""
        return _sigmoid(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)
