"""Gradient-descent optimizers for the neural matchers."""

from __future__ import annotations

import numpy as np


class Adam:
    """Adam optimizer over a list of parameter arrays (updated in place)."""

    def __init__(
        self,
        parameters: list[np.ndarray],
        learning_rate: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if not parameters:
            raise ValueError("Adam requires at least one parameter array")
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m = [np.zeros_like(p) for p in parameters]
        self._v = [np.zeros_like(p) for p in parameters]
        self._t = 0

    def step(self, gradients: list[np.ndarray]) -> None:
        """Apply one update; *gradients* aligns with the parameter list."""
        if len(gradients) != len(self.parameters):
            raise ValueError(
                f"got {len(gradients)} gradients for {len(self.parameters)} parameters"
            )
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, grad, m, v in zip(self.parameters, gradients, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            param -= self.learning_rate * (m / bias1) / (np.sqrt(v / bias2) + self.epsilon)
