"""Binary classification metrics.

The paper evaluates matching exclusively with precision, recall and the
F-measure (Section II); these functions are the single implementation used by
every matcher, the linearity sweep of Algorithm 1 and the practical measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConfusionCounts:
    """True/false positive/negative counts for a binary task."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.true_positives + self.true_negatives) / self.total


def confusion_counts(
    true_labels: np.ndarray, predicted_labels: np.ndarray
) -> ConfusionCounts:
    """Compute confusion counts from two 0/1 vectors of equal length."""
    truth = np.asarray(true_labels).astype(bool)
    predicted = np.asarray(predicted_labels).astype(bool)
    if truth.shape != predicted.shape:
        raise ValueError(
            f"label vectors differ in shape: {truth.shape} vs {predicted.shape}"
        )
    return ConfusionCounts(
        true_positives=int(np.sum(truth & predicted)),
        false_positives=int(np.sum(~truth & predicted)),
        true_negatives=int(np.sum(~truth & ~predicted)),
        false_negatives=int(np.sum(truth & ~predicted)),
    )


def precision_score(true_labels: np.ndarray, predicted_labels: np.ndarray) -> float:
    """Precision = TP / (TP + FP); 0 when nothing was predicted positive."""
    counts = confusion_counts(true_labels, predicted_labels)
    denominator = counts.true_positives + counts.false_positives
    if denominator == 0:
        return 0.0
    return counts.true_positives / denominator


def recall_score(true_labels: np.ndarray, predicted_labels: np.ndarray) -> float:
    """Recall = TP / (TP + FN); 0 when there are no positives at all."""
    counts = confusion_counts(true_labels, predicted_labels)
    denominator = counts.true_positives + counts.false_negatives
    if denominator == 0:
        return 0.0
    return counts.true_positives / denominator


def f1_score(true_labels: np.ndarray, predicted_labels: np.ndarray) -> float:
    """F1 = harmonic mean of precision and recall (0 when both are 0)."""
    __, __, f1 = precision_recall_f1(true_labels, predicted_labels)
    return f1


def f_star_score(true_labels: np.ndarray, predicted_labels: np.ndarray) -> float:
    """The F* measure of Hand & Christen: TP / (TP + FP + FN).

    The paper's F-measure reference ([15], [17]) criticizes F1's implicit
    precision/recall trade-off weighting; F* is the proposed alternative —
    the Jaccard index of the predicted and true positive sets. Monotone in
    F1 (F* = F1 / (2 - F1)) but with an interpretable absolute scale.
    """
    counts = confusion_counts(true_labels, predicted_labels)
    denominator = (
        counts.true_positives + counts.false_positives + counts.false_negatives
    )
    if denominator == 0:
        return 0.0
    return counts.true_positives / denominator


def balanced_accuracy(
    true_labels: np.ndarray, predicted_labels: np.ndarray
) -> float:
    """Mean of the per-class recalls — robust to the heavy ER imbalance."""
    counts = confusion_counts(true_labels, predicted_labels)
    positives = counts.true_positives + counts.false_negatives
    negatives = counts.true_negatives + counts.false_positives
    sensitivity = counts.true_positives / positives if positives else 0.0
    specificity = counts.true_negatives / negatives if negatives else 0.0
    return (sensitivity + specificity) / 2.0


def matthews_correlation(
    true_labels: np.ndarray, predicted_labels: np.ndarray
) -> float:
    """Matthews correlation coefficient in [-1, 1] (0 on degenerate splits)."""
    counts = confusion_counts(true_labels, predicted_labels)
    tp, fp = counts.true_positives, counts.false_positives
    tn, fn = counts.true_negatives, counts.false_negatives
    denominator = (tp + fp) * (tp + fn) * (tn + fp) * (tn + fn)
    if denominator == 0:
        return 0.0
    return (tp * tn - fp * fn) / math.sqrt(denominator)


def precision_recall_f1(
    true_labels: np.ndarray, predicted_labels: np.ndarray
) -> tuple[float, float, float]:
    """Return (precision, recall, F1) in one pass over the labels."""
    counts = confusion_counts(true_labels, predicted_labels)
    predicted_positive = counts.true_positives + counts.false_positives
    actual_positive = counts.true_positives + counts.false_negatives
    precision = (
        counts.true_positives / predicted_positive if predicted_positive else 0.0
    )
    recall = counts.true_positives / actual_positive if actual_positive else 0.0
    if precision + recall == 0.0:
        return precision, recall, 0.0
    f1 = 2.0 * precision * recall / (precision + recall)
    return precision, recall, f1
