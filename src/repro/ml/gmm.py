"""Two-component Gaussian mixture fitted by expectation-maximisation.

ZeroER (Section IV-B) models the match and non-match similarity-feature
distributions as Gaussians and assigns labels from posterior responsibility,
with no training labels. Full covariance matrices capture the "dependencies
between different features" the paper highlights.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_features


class GaussianMixture:
    """EM for a mixture of ``n_components`` full-covariance Gaussians."""

    def __init__(
        self,
        n_components: int = 2,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
        regularization: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.regularization = regularization
        self.seed = seed
        self.means_: np.ndarray | None = None
        self.covariances_: np.ndarray | None = None
        self.weights_: np.ndarray | None = None
        self.converged_ = False
        self.n_iterations_ = 0

    def fit(self, features: np.ndarray) -> "GaussianMixture":
        array = check_features(features)
        n_samples, n_features = array.shape
        if n_samples < self.n_components:
            raise ValueError(
                f"need at least {self.n_components} samples, got {n_samples}"
            )

        # Initialize means by quantile-spread along the first principal
        # direction, which for similarity features separates low-similarity
        # (non-match) from high-similarity (match) mass deterministically.
        projection = array @ self._principal_direction(array)
        order = np.argsort(projection, kind="stable")
        chunks = np.array_split(order, self.n_components)
        means = np.stack([array[chunk].mean(axis=0) for chunk in chunks])
        covariances = np.stack(
            [np.cov(array.T) + self.regularization * np.eye(n_features)]
            * self.n_components
        ).reshape(self.n_components, n_features, n_features)
        weights = np.full(self.n_components, 1.0 / self.n_components)

        previous_log_likelihood = -np.inf
        self.converged_ = False
        for iteration in range(1, self.max_iterations + 1):
            log_densities = self._log_densities(array, means, covariances, weights)
            log_norm = _logsumexp(log_densities, axis=1)
            responsibilities = np.exp(log_densities - log_norm[:, None])
            log_likelihood = float(log_norm.mean())

            component_mass = responsibilities.sum(axis=0)
            component_mass = np.maximum(component_mass, 1e-12)
            weights = component_mass / n_samples
            means = (responsibilities.T @ array) / component_mass[:, None]
            for k in range(self.n_components):
                centered = array - means[k]
                weighted = centered * responsibilities[:, k][:, None]
                covariances[k] = (
                    weighted.T @ centered / component_mass[k]
                    + self.regularization * np.eye(n_features)
                )

            self.n_iterations_ = iteration
            if abs(log_likelihood - previous_log_likelihood) < self.tolerance:
                self.converged_ = True
                break
            previous_log_likelihood = log_likelihood

        self.means_ = means
        self.covariances_ = covariances
        self.weights_ = weights
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Posterior responsibility of each component for each sample."""
        if self.means_ is None or self.covariances_ is None or self.weights_ is None:
            raise RuntimeError("GaussianMixture is not fitted; call fit() first")
        array = check_features(features)
        log_densities = self._log_densities(
            array, self.means_, self.covariances_, self.weights_
        )
        log_norm = _logsumexp(log_densities, axis=1)
        return np.exp(log_densities - log_norm[:, None])

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard component assignment for each sample."""
        return np.argmax(self.predict_proba(features), axis=1)

    def match_component(self) -> int:
        """Index of the component with the largest mean feature magnitude.

        On similarity features (all in [0, 1], higher = more similar) the
        match class is the high-mean component. ZeroER uses this to orient
        the unsupervised clustering into match / non-match labels.
        """
        if self.means_ is None:
            raise RuntimeError("GaussianMixture is not fitted; call fit() first")
        return int(np.argmax(self.means_.mean(axis=1)))

    @staticmethod
    def _principal_direction(array: np.ndarray) -> np.ndarray:
        centered = array - array.mean(axis=0)
        covariance = centered.T @ centered
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        return eigenvectors[:, int(np.argmax(eigenvalues))]

    @staticmethod
    def _log_densities(
        array: np.ndarray,
        means: np.ndarray,
        covariances: np.ndarray,
        weights: np.ndarray,
    ) -> np.ndarray:
        n_samples, n_features = array.shape
        n_components = means.shape[0]
        out = np.empty((n_samples, n_components))
        constant = -0.5 * n_features * np.log(2.0 * np.pi)
        for k in range(n_components):
            try:
                cholesky = np.linalg.cholesky(covariances[k])
            except np.linalg.LinAlgError:
                cholesky = np.linalg.cholesky(
                    covariances[k] + 1e-6 * np.eye(n_features)
                )
            centered = array - means[k]
            # Solve L z = centered^T with the general solver; the feature
            # dimensionality is tiny (<= ~30) so this is cheap.
            z = np.linalg.solve(cholesky, centered.T).T
            log_det = 2.0 * np.sum(np.log(np.diag(cholesky)))
            mahalanobis = np.sum(z * z, axis=1)
            out[:, k] = (
                np.log(max(weights[k], 1e-300))
                + constant
                - 0.5 * log_det
                - 0.5 * mahalanobis
            )
        return out


def _logsumexp(values: np.ndarray, axis: int) -> np.ndarray:
    peak = values.max(axis=axis, keepdims=True)
    return (peak + np.log(np.sum(np.exp(values - peak), axis=axis, keepdims=True))).squeeze(axis)
