"""Multi-layer perceptron with optional highway layers.

This is the classification head shared by the deep matchers: DeepMatcher's
paper configuration is "a two-layer fully connected ReLU HighwayNet followed
by a softmax layer" (Section V-B); the other neural matchers reuse the same
trunk with different input representations. Implemented directly on numpy
with manual backpropagation and Adam.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_features, check_labels
from repro.ml.optim import Adam


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -500.0, 500.0)))


class MLPClassifier:
    """Binary MLP: dense ReLU input layer, ``n_highway`` highway layers, logit.

    A highway layer computes ``t * relu(Wh x + bh) + (1 - t) * x`` with gate
    ``t = sigmoid(Wt x + bt)``; gates are bias-initialized negative so the
    network starts close to the identity, as in the highway-network paper.

    Training is minibatch Adam on weighted cross-entropy; with
    ``balanced=True`` (the default) the minority class is up-weighted, which
    matters on ER candidate sets where positives can be <1% of pairs.

    ``fit`` supports an optional validation set: the parameters from the
    epoch with the best validation F1 are kept (the model-selection protocol
    the paper enforces on EMTransformer in Section V-B).
    """

    def __init__(
        self,
        hidden_size: int = 64,
        n_highway: int = 2,
        epochs: int = 30,
        batch_size: int = 64,
        learning_rate: float = 5e-3,
        balanced: bool = True,
        seed: int = 0,
    ) -> None:
        if hidden_size < 1:
            raise ValueError(f"hidden_size must be >= 1, got {hidden_size}")
        if n_highway < 0:
            raise ValueError(f"n_highway must be >= 0, got {n_highway}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.hidden_size = hidden_size
        self.n_highway = n_highway
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.balanced = balanced
        self.seed = seed
        self._params: list[np.ndarray] = []
        self._n_features = 0
        self.validation_f1_history_: list[float] = []

    # -- parameter layout -------------------------------------------------
    # params[0], params[1]                  input projection W_in, b_in
    # then per highway layer k:             W_h, b_h, W_t, b_t
    # params[-2], params[-1]                output W_out (hidden,), b_out ()

    def _init_params(self, n_features: int) -> list[np.ndarray]:
        rng = np.random.default_rng(self.seed)
        h = self.hidden_size

        def glorot(shape: tuple[int, int]) -> np.ndarray:
            scale = np.sqrt(6.0 / (shape[0] + shape[1]))
            return rng.uniform(-scale, scale, size=shape)

        params: list[np.ndarray] = [glorot((n_features, h)), np.zeros(h)]
        for __ in range(self.n_highway):
            params.extend(
                [
                    glorot((h, h)),
                    np.zeros(h),
                    glorot((h, h)),
                    np.full(h, -1.0),  # carry-biased gates
                ]
            )
        params.extend([glorot((h, 1))[:, 0], np.zeros(1)])
        return params

    def _forward(
        self, x: np.ndarray, params: list[np.ndarray]
    ) -> tuple[np.ndarray, list[dict[str, np.ndarray]]]:
        """Return output logits and a cache of intermediates for backprop."""
        caches: list[dict[str, np.ndarray]] = []
        pre_in = x @ params[0] + params[1]
        hidden = _relu(pre_in)
        caches.append({"x": x, "pre": pre_in, "out": hidden})
        cursor = 2
        for __ in range(self.n_highway):
            w_h, b_h, w_t, b_t = params[cursor : cursor + 4]
            cursor += 4
            pre_h = hidden @ w_h + b_h
            candidate = _relu(pre_h)
            pre_t = hidden @ w_t + b_t
            gate = _sigmoid(pre_t)
            out = gate * candidate + (1.0 - gate) * hidden
            caches.append(
                {
                    "x": hidden,
                    "pre_h": pre_h,
                    "candidate": candidate,
                    "gate": gate,
                    "out": out,
                }
            )
            hidden = out
        logits = hidden @ params[-2] + params[-1][0]
        return logits, caches

    def _backward(
        self,
        grad_logits: np.ndarray,
        params: list[np.ndarray],
        caches: list[dict[str, np.ndarray]],
    ) -> list[np.ndarray]:
        grads = [np.zeros_like(p) for p in params]
        hidden = caches[-1]["out"]
        grads[-2] = hidden.T @ grad_logits
        grads[-1] = np.array([grad_logits.sum()])
        grad_hidden = grad_logits[:, None] * params[-2][None, :]

        cursor = 2 + 4 * (self.n_highway - 1)
        for layer in range(self.n_highway - 1, -1, -1):
            cache = caches[1 + layer]
            w_h, __, w_t, __ = params[cursor : cursor + 4]
            gate = cache["gate"]
            candidate = cache["candidate"]
            x = cache["x"]
            grad_gate = grad_hidden * (candidate - x)
            grad_candidate = grad_hidden * gate
            grad_pre_t = grad_gate * gate * (1.0 - gate)
            grad_pre_h = grad_candidate * (cache["pre_h"] > 0.0)
            grads[cursor] = x.T @ grad_pre_h
            grads[cursor + 1] = grad_pre_h.sum(axis=0)
            grads[cursor + 2] = x.T @ grad_pre_t
            grads[cursor + 3] = grad_pre_t.sum(axis=0)
            grad_hidden = (
                grad_hidden * (1.0 - gate)
                + grad_pre_h @ w_h.T
                + grad_pre_t @ w_t.T
            )
            cursor -= 4

        input_cache = caches[0]
        grad_pre_in = grad_hidden * (input_cache["pre"] > 0.0)
        grads[0] = input_cache["x"].T @ grad_pre_in
        grads[1] = grad_pre_in.sum(axis=0)
        return grads

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        validation_features: np.ndarray | None = None,
        validation_labels: np.ndarray | None = None,
    ) -> "MLPClassifier":
        array = check_features(features)
        target = check_labels(labels, array.shape[0]).astype(np.float64)
        self._n_features = array.shape[1]
        params = self._init_params(self._n_features)
        optimizer = Adam(params, learning_rate=self.learning_rate)
        rng = np.random.default_rng(self.seed + 1)
        n_samples = array.shape[0]

        if self.balanced:
            positives = target.sum()
            negatives = n_samples - positives
            if positives > 0 and negatives > 0:
                sample_weight = np.where(
                    target == 1.0,
                    n_samples / (2.0 * positives),
                    n_samples / (2.0 * negatives),
                )
            else:
                sample_weight = np.ones(n_samples)
        else:
            sample_weight = np.ones(n_samples)

        use_validation = (
            validation_features is not None and validation_labels is not None
        )
        best_f1 = -1.0
        best_params: list[np.ndarray] | None = None
        self.validation_f1_history_ = []

        batch = max(1, min(self.batch_size, n_samples))
        for __ in range(self.epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, batch):
                chunk = order[start : start + batch]
                x = array[chunk]
                y = target[chunk]
                w = sample_weight[chunk]
                logits, caches = self._forward(x, params)
                probabilities = _sigmoid(logits)
                grad_logits = (probabilities - y) * w / w.sum()
                grads = self._backward(grad_logits, params, caches)
                optimizer.step(grads)
            if use_validation:
                self._params = params
                from repro.ml.metrics import f1_score

                predictions = self.predict(validation_features)
                score = f1_score(np.asarray(validation_labels), predictions)
                self.validation_f1_history_.append(score)
                if score > best_f1:
                    best_f1 = score
                    best_params = [p.copy() for p in params]

        self._params = best_params if best_params is not None else params
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw output logits."""
        if not self._params:
            raise RuntimeError("MLPClassifier is not fitted; call fit() first")
        array = check_features(features)
        if array.shape[1] != self._n_features:
            raise ValueError(
                f"expected {self._n_features} features, got {array.shape[1]}"
            )
        logits, __ = self._forward(array, self._params)
        return logits

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return _sigmoid(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)
