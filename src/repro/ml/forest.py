"""Random forest: bagged CART trees with feature subsampling.

The ``Magellan-RF`` matcher head (Section IV-B).
"""

from __future__ import annotations

import math

import numpy as np

from repro.ml.base import check_features, check_labels
from repro.ml.tree import DecisionTree


class RandomForest:
    """Bootstrap-aggregated decision trees.

    Each tree is trained on a bootstrap resample and restricted to
    ``sqrt(n_features)`` candidate features per split (the standard
    classification default).
    """

    def __init__(
        self,
        n_trees: int = 30,
        max_depth: int = 12,
        min_samples_leaf: int = 1,
        seed: int = 0,
    ) -> None:
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self._trees: list[DecisionTree] = []
        self._n_features = 0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomForest":
        array = check_features(features)
        target = check_labels(labels, array.shape[0])
        self._n_features = array.shape[1]
        max_features = max(1, int(math.sqrt(self._n_features)))
        rng = np.random.default_rng(self.seed)
        n_samples = array.shape[0]

        self._trees = []
        for tree_index in range(self.n_trees):
            sample = rng.integers(0, n_samples, size=n_samples)
            # Guarantee both classes appear in the bootstrap when possible, so
            # no tree degenerates to a constant predictor on imbalanced data.
            if target.sum() > 0 and len(np.unique(target[sample])) < 2:
                minority = np.flatnonzero(target == (0 if target.mean() > 0.5 else 1))
                sample[: len(minority)] = minority
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=self.seed + 1000 + tree_index,
            )
            tree.fit(array[sample], target[sample])
            self._trees.append(tree)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Mean leaf probability across trees."""
        if not self._trees:
            raise RuntimeError("RandomForest is not fitted; call fit() first")
        array = check_features(features)
        if array.shape[1] != self._n_features:
            raise ValueError(
                f"expected {self._n_features} features, got {array.shape[1]}"
            )
        votes = np.zeros(array.shape[0])
        for tree in self._trees:
            votes += tree.predict_proba(array)
        return votes / len(self._trees)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)
