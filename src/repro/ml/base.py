"""Common estimator protocol and input validation helpers."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Estimator(Protocol):
    """Minimal protocol every classifier in :mod:`repro.ml` satisfies."""

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "Estimator":
        """Train on a (n_samples, n_features) matrix and 0/1 label vector."""
        ...

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Return 0/1 predictions for each row of *features*."""
        ...


def check_features(features: np.ndarray, name: str = "features") -> np.ndarray:
    """Validate and normalize a feature matrix to 2-d float64.

    Accepts 1-d input (treated as a single-feature column) for convenience.
    Raises ``ValueError`` on empty input or non-finite values, which would
    otherwise silently poison downstream estimators.
    """
    array = np.asarray(features, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {array.shape}")
    if array.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one sample")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return array


def check_labels(
    labels: np.ndarray, n_samples: int, name: str = "labels"
) -> np.ndarray:
    """Validate a 0/1 label vector of length *n_samples*."""
    array = np.asarray(labels)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {array.shape}")
    if array.shape[0] != n_samples:
        raise ValueError(
            f"{name} has {array.shape[0]} entries but there are {n_samples} samples"
        )
    unique = np.unique(array)
    if not np.all(np.isin(unique, (0, 1))):
        raise ValueError(f"{name} must be binary 0/1, got values {unique}")
    return array.astype(np.int64)
