"""CART decision tree with Gini impurity (the ``Magellan-DT`` head)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import check_features, check_labels


@dataclass
class _Node:
    """A tree node; leaves have ``feature is None``."""

    prediction: float  # positive-class fraction at this node
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(positive_count: float, total: float) -> float:
    if total == 0:
        return 0.0
    p = positive_count / total
    return 2.0 * p * (1.0 - p)


class DecisionTree:
    """Binary CART classifier.

    Splits minimize weighted Gini impurity over candidate thresholds
    (midpoints between consecutive distinct values). Optional feature
    subsampling (``max_features``) makes the tree usable as a random-forest
    base learner.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError(
                f"min_samples_split must be >= 2, got {min_samples_split}"
            )
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self._n_features = 0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTree":
        array = check_features(features)
        target = check_labels(labels, array.shape[0]).astype(np.float64)
        self._n_features = array.shape[1]
        rng = np.random.default_rng(self.seed)
        self._root = self._build(array, target, depth=0, rng=rng)
        return self

    def _build(
        self, array: np.ndarray, target: np.ndarray, depth: int, rng: np.random.Generator
    ) -> _Node:
        prediction = float(target.mean()) if target.size else 0.0
        node = _Node(prediction=prediction)
        if (
            depth >= self.max_depth
            or target.size < self.min_samples_split
            or prediction == 0.0
            or prediction == 1.0
        ):
            return node

        split = self._best_split(array, target, rng)
        if split is None:
            return node
        feature, threshold = split
        mask = array[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(array[mask], target[mask], depth + 1, rng)
        node.right = self._build(array[~mask], target[~mask], depth + 1, rng)
        return node

    def _best_split(
        self, array: np.ndarray, target: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, float] | None:
        n_samples, n_features = array.shape
        if self.max_features is not None and self.max_features < n_features:
            candidates = rng.choice(n_features, size=self.max_features, replace=False)
        else:
            candidates = np.arange(n_features)

        best_impurity = np.inf
        best: tuple[int, float] | None = None
        total_positive = target.sum()
        for feature in candidates:
            order = np.argsort(array[:, feature], kind="stable")
            values = array[order, feature]
            ordered_target = target[order]
            cumulative_positive = np.cumsum(ordered_target)
            # Candidate split after position i (1-based count of left side).
            for i in range(self.min_samples_leaf, n_samples - self.min_samples_leaf + 1):
                if i == n_samples or values[i - 1] == values[min(i, n_samples - 1)]:
                    continue
                left_total = float(i)
                right_total = float(n_samples - i)
                left_positive = float(cumulative_positive[i - 1])
                right_positive = float(total_positive - left_positive)
                impurity = (
                    left_total * _gini(left_positive, left_total)
                    + right_total * _gini(right_positive, right_total)
                ) / n_samples
                if impurity < best_impurity - 1e-12:
                    best_impurity = impurity
                    threshold = (values[i - 1] + values[i]) / 2.0
                    best = (int(feature), float(threshold))
        parent_impurity = _gini(float(total_positive), float(n_samples))
        if best is not None and best_impurity < parent_impurity - 1e-12:
            return best
        return None

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Positive-class fraction at the leaf reached by each sample."""
        if self._root is None:
            raise RuntimeError("DecisionTree is not fitted; call fit() first")
        array = check_features(features)
        if array.shape[1] != self._n_features:
            raise ValueError(
                f"expected {self._n_features} features, got {array.shape[1]}"
            )
        out = np.empty(array.shape[0])
        for index, row in enumerate(array):
            node = self._root
            while not node.is_leaf:
                assert node.left is not None and node.right is not None
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[index] = node.prediction
        return out

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)

    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a single leaf)."""
        if self._root is None:
            raise RuntimeError("DecisionTree is not fitted; call fit() first")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
