"""Feature scaling transforms."""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_features


class StandardScaler:
    """Zero-mean, unit-variance scaling; constant columns are left centred."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        array = check_features(features)
        self.mean_ = array.mean(axis=0)
        scale = array.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted; call fit() first")
        array = check_features(features)
        if array.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {array.shape[1]}"
            )
        return (array - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)


class MinMaxScaler:
    """Scale each feature into [0, 1]; constant columns map to 0."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "MinMaxScaler":
        array = check_features(features)
        self.min_ = array.min(axis=0)
        value_range = array.max(axis=0) - self.min_
        value_range[value_range == 0.0] = 1.0
        self.range_ = value_range
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("MinMaxScaler is not fitted; call fit() first")
        array = check_features(features)
        if array.shape[1] != self.min_.shape[0]:
            raise ValueError(
                f"expected {self.min_.shape[0]} features, got {array.shape[1]}"
            )
        return np.clip((array - self.min_) / self.range_, 0.0, 1.0)

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)
