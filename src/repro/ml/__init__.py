"""Learning substrate: classifiers, mixture models and metrics on numpy.

No third-party ML framework is available in the reproduction environment, so
every estimator the paper relies on — the linear SVM behind the l1/l2
complexity measures, the nearest-neighbour classifier behind n1-n4, Magellan's
decision tree / logistic regression / random forest / SVM heads, ZeroER's
Gaussian mixture EM, and the neural networks standing in for the deep
matchers — is implemented here from scratch.

All estimators follow a small common protocol (:class:`repro.ml.base.Estimator`):
``fit(X, y)`` then ``predict(X)`` / ``predict_proba(X)``, with explicit seeds
for anything stochastic.
"""

from repro.ml.base import Estimator, check_features, check_labels
from repro.ml.forest import RandomForest
from repro.ml.gmm import GaussianMixture
from repro.ml.knn import KNeighborsClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import (
    ConfusionCounts,
    balanced_accuracy,
    confusion_counts,
    f1_score,
    f_star_score,
    matthews_correlation,
    precision_recall_f1,
    precision_score,
    recall_score,
)
from repro.ml.mlp import MLPClassifier
from repro.ml.scaling import MinMaxScaler, StandardScaler
from repro.ml.svm import LinearSVM
from repro.ml.tree import DecisionTree

__all__ = [
    "ConfusionCounts",
    "DecisionTree",
    "Estimator",
    "GaussianMixture",
    "KNeighborsClassifier",
    "LinearSVM",
    "LogisticRegression",
    "MLPClassifier",
    "MinMaxScaler",
    "RandomForest",
    "StandardScaler",
    "balanced_accuracy",
    "check_features",
    "check_labels",
    "confusion_counts",
    "f1_score",
    "f_star_score",
    "matthews_correlation",
    "precision_recall_f1",
    "precision_score",
    "recall_score",
]
