"""Configuration for the streaming sharded sweep (``repro scale-up``).

A scale run takes one established benchmark's *shape* — its domain,
noise channels, synonym divergence, family behaviour and the ratio of
shared to source-exclusive entities — and scales it to an arbitrary
record count. The resulting :class:`~repro.datasets.generator
.GeneratorProfile` is consumed shard-by-shard through
:func:`~repro.datasets.generator.generate_shard`, so the full dataset is
never materialized in RAM.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.datasets.established import ESTABLISHED_PROFILES
from repro.datasets.generator import GeneratorProfile

#: ESDE variants the scale path can persist and resume (the embedding
#: variants hold a task-local embedder that cannot snapshot; see
#: :meth:`repro.matchers.esde.EsdeMatcher.to_payload`).
SCALE_MATCHER_VARIANTS: tuple[str, ...] = ("SA", "SB", "SAQ", "SBQ")

#: Blocker specs the sweep accepts (``repro.blocking.factory``); the ANN
#: backends are what make million-record shards affordable.
SCALE_BLOCKER_SPECS: tuple[str, ...] = (
    "exhaustive",
    "qgram",
    "token",
    "sorted-neighborhood",
    "lsh",
    "graph",
)


@dataclass(frozen=True)
class ScaleConfig:
    """Everything one scale-up run needs (hashable, fingerprintable).

    ``records`` is the target total record count across both sources;
    ``shard_size`` counts *entities* per shard — a shared entity renders
    one record in each source, so a shard yields between ``shard_size``
    and ``2 * shard_size`` records.
    """

    dataset_id: str = "Ds2"
    records: int = 100_000
    shard_size: int = 10_000
    blocker: str = "lsh"
    matcher: str = "SA"
    seed: int = 0
    memory_budget_mb: float | None = None
    disk_reserve_mb: float | None = None
    #: cap on labeled pairs used to fit the matcher on shard 0.
    fit_pairs: int = 3000

    def __post_init__(self) -> None:
        if self.dataset_id not in ESTABLISHED_PROFILES:
            raise ValueError(
                f"unknown dataset {self.dataset_id!r}; "
                f"known: {sorted(ESTABLISHED_PROFILES)}"
            )
        if self.records < 10:
            raise ValueError(f"records must be >= 10, got {self.records}")
        if self.shard_size < 1:
            raise ValueError(
                f"shard_size must be >= 1, got {self.shard_size}"
            )
        variant = self.matcher.removesuffix("-ESDE")
        if variant not in SCALE_MATCHER_VARIANTS:
            raise ValueError(
                f"matcher {self.matcher!r} cannot run in scale mode; "
                f"supported variants: {SCALE_MATCHER_VARIANTS}"
            )
        if self.blocker not in SCALE_BLOCKER_SPECS:
            raise ValueError(
                f"unknown blocker {self.blocker!r}; "
                f"known: {SCALE_BLOCKER_SPECS}"
            )
        if self.fit_pairs < 10:
            raise ValueError(f"fit_pairs must be >= 10, got {self.fit_pairs}")

    @property
    def matcher_variant(self) -> str:
        """The bare ESDE variant name (``"SA-ESDE"`` -> ``"SA"``)."""
        return self.matcher.removesuffix("-ESDE")


def scale_profile(
    dataset_id: str, records: int, seed: int = 0
) -> GeneratorProfile:
    """An established benchmark's shape, scaled to *records* records.

    The share of matches and source-exclusive extras is preserved from
    the base profile; only the absolute counts grow. Deterministic in
    ``(dataset_id, records, seed)``.
    """
    if dataset_id not in ESTABLISHED_PROFILES:
        raise KeyError(
            f"unknown dataset {dataset_id!r}; "
            f"known: {sorted(ESTABLISHED_PROFILES)}"
        )
    base = ESTABLISHED_PROFILES[dataset_id]
    base_records = 2 * base.n_matches + base.left_extra + base.right_extra
    factor = records / base_records
    n_matches = max(1, int(round(base.n_matches * factor)))
    left_extra = max(0, int(round(base.left_extra * factor)))
    right_extra = max(0, int(round(base.right_extra * factor)))
    noise_left = base.noise
    noise_right = base.noise_right if base.noise_right is not None else base.noise
    if base.dirty:
        noise_left = replace(noise_left, dirty_misplacement_rate=0.5)
        noise_right = replace(noise_right, dirty_misplacement_rate=0.5)
    return GeneratorProfile(
        name=f"{dataset_id}@{records}",
        domain=base.domain,
        n_matches=n_matches,
        left_extra=left_extra,
        right_extra=right_extra,
        synonym_rate_left=0.0,
        synonym_rate_right=base.synonym_rate_right,
        noise_left=noise_left,
        noise_right=noise_right,
        family_fraction=base.family_fraction,
        seed=base.seed + seed,
    )
