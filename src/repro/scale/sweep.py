"""Streaming sharded sweeps: blocking + matching at 10^5–10^6 records.

``ShardedSweep`` drives one :class:`~repro.scale.config.ScaleConfig`
through the full pipeline without ever materializing the dataset:

1. **Generate** shard ``k`` via :func:`~repro.datasets.generator
   .generate_shard` — per-entity RNG streams make the shard's records
   bit-identical to what a monolithic run would produce.
2. **Block** it with a :func:`~repro.blocking.factory.make_blocker`
   backend (ANN by default) and score PC/PQ counts against the shard's
   ground truth.
3. **Match** the candidates with an ESDE matcher fitted once on shard 0
   and persisted as a JSON payload, so every shard (and every resumed
   run) predicts with bit-identical thresholds. Feature extraction runs
   through a per-shard :class:`~repro.text.feature_store.FeatureStore`
   that dies with the shard — the memory ceiling is one shard, not one
   dataset.
4. **Checkpoint** the shard's counts in a ``scale.journal`` through
   :class:`~repro.runtime.journal.CheckpointJournal`; a SIGKILL mid-shard
   resumes at the last shard boundary, and ``repro doctor`` audits the
   journal against the run's ``scale.manifest.json``.
5. **Reduce** per-shard counts into dataset-level PC/PQ and matcher
   precision/recall/F1. Matches never cross shards (a shared entity
   renders both its records in one shard), so per-shard blocking loses no
   recall; cross-shard candidate pairs would only contribute negatives
   and are deliberately out of scope — documented in DESIGN.md §13.

Between phases the shared :class:`~repro.runtime.guard.ResourceGuard`
enforces ``--memory-budget`` / ``--disk-reserve``: degradation first
(smaller kernel batches, merge backend, feature cache off), then a
``BudgetExceeded`` abort at a shard boundary — never a silent OOM kill.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs
from repro.blocking.base import evaluate_blocking
from repro.blocking.factory import make_blocker
from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.splits import split_three_way
from repro.data.task import MatchingTask
from repro.datasets.entities import EntityFactory
from repro.datasets.generator import (
    SourcePair,
    generate_shard,
    shard_count,
)
from repro.matchers.esde import EsdeMatcher
from repro.runtime.cache import read_envelope, write_envelope
from repro.runtime.guard import ResourceGuard
from repro.runtime.journal import CheckpointJournal
from repro.scale.config import ScaleConfig, scale_profile

#: Scale state-directory filenames. The journal pairs with the manifest
#: the way ``serve.journal`` pairs with ``session.json``: entries are
#: only meaningful under the manifest's config fingerprint, and
#: ``repro doctor`` audits the pairing.
SCALE_JOURNAL_NAME = "scale.journal"
SCALE_MANIFEST_NAME = "scale.manifest.json"
SCALE_REPORT_NAME = "scale.report.json"

_FIT_UNIT = "scale:fit"


def _shard_unit(shard_index: int) -> str:
    return f"scale:shard:{shard_index:05d}"


def config_fingerprint(config: ScaleConfig) -> str:
    """A short stable digest of everything that shapes the results."""
    key = repr((
        config.dataset_id,
        config.records,
        config.shard_size,
        config.blocker,
        config.matcher_variant,
        config.seed,
        config.fit_pairs,
    ))
    return hashlib.blake2b(key.encode("utf-8"), digest_size=8).hexdigest()


@dataclass(frozen=True)
class ShardStats:
    """The reducible counts of one completed shard."""

    shard_index: int
    n_left: int
    n_right: int
    n_matches: int
    n_candidates: int
    block_tp: int  #: candidates that are true matches (PC/PQ numerator)
    tp: int
    fp: int
    fn: int
    seconds: float

    @property
    def n_records(self) -> int:
        return self.n_left + self.n_right

    def to_info(self) -> dict:
        """The journal ``info`` payload (JSON-clean, resume-identical)."""
        return {
            "shard_index": self.shard_index,
            "n_left": self.n_left,
            "n_right": self.n_right,
            "n_matches": self.n_matches,
            "n_candidates": self.n_candidates,
            "block_tp": self.block_tp,
            "tp": self.tp,
            "fp": self.fp,
            "fn": self.fn,
            "seconds": round(self.seconds, 3),
        }

    @classmethod
    def from_info(cls, info: dict) -> "ShardStats":
        return cls(
            shard_index=int(info["shard_index"]),
            n_left=int(info["n_left"]),
            n_right=int(info["n_right"]),
            n_matches=int(info["n_matches"]),
            n_candidates=int(info["n_candidates"]),
            block_tp=int(info["block_tp"]),
            tp=int(info["tp"]),
            fp=int(info["fp"]),
            fn=int(info["fn"]),
            seconds=float(info["seconds"]),
        )


@dataclass(frozen=True)
class ScaleReport:
    """One sweep's reduced result: per-shard stats plus global metrics."""

    config: ScaleConfig
    fingerprint: str
    n_shards: int
    shards: tuple[ShardStats, ...]
    matcher_payload: dict
    resumed_shards: int

    @property
    def complete(self) -> bool:
        return len(self.shards) == self.n_shards

    @property
    def n_records(self) -> int:
        return sum(shard.n_records for shard in self.shards)

    @property
    def total_seconds(self) -> float:
        return sum(shard.seconds for shard in self.shards)

    @property
    def records_per_sec(self) -> float:
        seconds = self.total_seconds
        return self.n_records / seconds if seconds > 0 else 0.0

    @property
    def pair_completeness(self) -> float:
        matches = sum(shard.n_matches for shard in self.shards)
        if matches == 0:
            return 1.0
        return sum(shard.block_tp for shard in self.shards) / matches

    @property
    def pairs_quality(self) -> float:
        candidates = sum(shard.n_candidates for shard in self.shards)
        if candidates == 0:
            return 0.0
        return sum(shard.block_tp for shard in self.shards) / candidates

    @property
    def precision(self) -> float:
        tp = sum(shard.tp for shard in self.shards)
        fp = sum(shard.fp for shard in self.shards)
        return tp / (tp + fp) if tp + fp else 0.0

    @property
    def recall(self) -> float:
        tp = sum(shard.tp for shard in self.shards)
        fn = sum(shard.fn for shard in self.shards)
        return tp / (tp + fn) if tp + fn else 0.0

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def state(self) -> dict:
        """The *diffable* final table: deterministic, no wall-clock.

        Two runs of the same config — fresh, resumed after a SIGKILL,
        doctor-repaired — must produce equal states. Timings are
        excluded; every count and score is exact arithmetic over
        journaled integers.
        """
        return {
            "dataset_id": self.config.dataset_id,
            "records": self.config.records,
            "shard_size": self.config.shard_size,
            "blocker": self.config.blocker,
            "matcher": self.config.matcher_variant,
            "seed": self.config.seed,
            "fingerprint": self.fingerprint,
            "n_shards": self.n_shards,
            "complete": self.complete,
            "n_records": self.n_records,
            "matcher_payload": dict(self.matcher_payload),
            "totals": {
                "n_matches": sum(s.n_matches for s in self.shards),
                "n_candidates": sum(s.n_candidates for s in self.shards),
                "block_tp": sum(s.block_tp for s in self.shards),
                "tp": sum(s.tp for s in self.shards),
                "fp": sum(s.fp for s in self.shards),
                "fn": sum(s.fn for s in self.shards),
            },
            "pair_completeness": round(self.pair_completeness, 6),
            "pairs_quality": round(self.pairs_quality, 6),
            "precision": round(self.precision, 6),
            "recall": round(self.recall, 6),
            "f1": round(self.f1, 6),
            "shards": [
                {
                    key: value
                    for key, value in shard.to_info().items()
                    if key != "seconds"
                }
                for shard in self.shards
            ],
        }

    def to_table(self) -> tuple[list[str], list[list[str]]]:
        """(headers, rows) for :func:`repro.experiments.report.render`."""
        headers = [
            "shard", "records", "candidates", "PC", "PQ", "F1", "rec/s",
        ]
        rows: list[list[str]] = []
        for shard in self.shards:
            pc = (
                shard.block_tp / shard.n_matches if shard.n_matches else 1.0
            )
            pq = (
                shard.block_tp / shard.n_candidates
                if shard.n_candidates
                else 0.0
            )
            tp, fp, fn = shard.tp, shard.fp, shard.fn
            p = tp / (tp + fp) if tp + fp else 0.0
            r = tp / (tp + fn) if tp + fn else 0.0
            f1 = 2 * p * r / (p + r) if p + r else 0.0
            rate = (
                shard.n_records / shard.seconds if shard.seconds > 0 else 0.0
            )
            rows.append([
                str(shard.shard_index),
                str(shard.n_records),
                str(shard.n_candidates),
                f"{pc:.3f}",
                f"{pq:.4f}",
                f"{f1:.3f}",
                f"{rate:,.0f}",
            ])
        rows.append([
            "ALL",
            str(self.n_records),
            str(sum(s.n_candidates for s in self.shards)),
            f"{self.pair_completeness:.3f}",
            f"{self.pairs_quality:.4f}",
            f"{self.f1:.3f}",
            f"{self.records_per_sec:,.0f}",
        ])
        return headers, rows


class _ShardTask:
    """The lightweight task shim shard prediction extracts features on.

    :class:`~repro.matchers.features.EsdeFeatureExtractor` needs only
    ``attributes`` and weak referenceability — the shard's
    :class:`~repro.text.feature_store.FeatureStore` is keyed weakly on
    this object, so dropping the shim frees the shard's token/q-gram
    planes (the scale mode memory ceiling).
    """

    def __init__(self, attributes: tuple[str, ...]) -> None:
        self.attributes = attributes


class ShardedSweep:
    """Drive one scale config shard-by-shard; see the module docstring."""

    def __init__(
        self, config: ScaleConfig, cache_dir: Path | str | None = None
    ) -> None:
        self.config = config
        self.fingerprint = config_fingerprint(config)
        self.profile = scale_profile(
            config.dataset_id, config.records, seed=config.seed
        )
        self.n_shards = shard_count(self.profile, config.shard_size)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.journal: CheckpointJournal | None = None
        self.guard = ResourceGuard(
            memory_budget_mb=config.memory_budget_mb,
            disk_reserve_mb=config.disk_reserve_mb,
            cache_dir=self.cache_dir,
        )
        self._factory = EntityFactory(
            self.profile.domain, seed=self.profile.seed
        )
        self._blocker = make_blocker(config.blocker)
        self.resumed_shards = 0

    # -- durable state ------------------------------------------------------

    def _open_state(self) -> None:
        """Attach the journal + manifest; discard stale-config state."""
        if self.cache_dir is None:
            self.journal = None
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        manifest_path = self.cache_dir / SCALE_MANIFEST_NAME
        stale = False
        if manifest_path.exists():
            try:
                payload = read_envelope(manifest_path)
            except Exception:
                stale = True
            else:
                stale = (
                    not isinstance(payload, dict)
                    or payload.get("fingerprint") != self.fingerprint
                )
        if stale:
            # A different (or unreadable) config owned this directory:
            # its checkpoints must not leak into this run's reduction.
            obs.inc("scale.state_reset")
            (self.cache_dir / SCALE_JOURNAL_NAME).unlink(missing_ok=True)
        write_envelope(
            manifest_path,
            {
                "fingerprint": self.fingerprint,
                "dataset_id": self.config.dataset_id,
                "records": self.config.records,
                "shard_size": self.config.shard_size,
                "blocker": self.config.blocker,
                "matcher": self.config.matcher_variant,
                "seed": self.config.seed,
                "n_shards": self.n_shards,
            },
        )
        self.journal = CheckpointJournal(self.cache_dir / SCALE_JOURNAL_NAME)

    def _journal_info(self, unit: str) -> dict | None:
        """A journaled unit's info, if it belongs to this config."""
        if self.journal is None:
            return None
        info = self.journal.info(unit)
        if info is None or info.get("config") != self.fingerprint:
            return None
        return info

    # -- fitting ------------------------------------------------------------

    def _fit_task(self, sources: SourcePair) -> MatchingTask:
        """A bounded matching task over shard 0's candidate pairs.

        Candidates come from the same blocker the sweep uses, labeled
        against the shard's ground truth, deterministically capped at
        ``fit_pairs`` (positives kept in full up to half the cap — this
        is where the small-split stratification fix matters: tiny
        positive classes must still reach validation and testing).
        """
        candidates = sorted(frozenset(self._blocker.candidates(sources)))
        positives = [key for key in candidates if key in sources.matches]
        negatives = [key for key in candidates if key not in sources.matches]
        if len(positives) < 3:
            raise RuntimeError(
                f"shard 0 of {self.profile.name} yielded only "
                f"{len(positives)} matching candidate pair(s); increase "
                "--shard-size or choose a higher-recall --blocker"
            )
        cap = self.config.fit_pairs
        rng = np.random.default_rng(self.config.seed)
        positives = positives[: max(3, cap // 2)]
        n_negatives = min(len(negatives), cap - len(positives))
        if n_negatives < 3:
            raise RuntimeError(
                f"shard 0 of {self.profile.name} yielded only "
                f"{len(negatives)} non-matching candidate pair(s); "
                "increase --shard-size"
            )
        chosen = rng.choice(len(negatives), size=n_negatives, replace=False)
        negatives = [negatives[i] for i in sorted(chosen)]

        pairs = LabeledPairSet()
        for left_id, right_id in positives:
            pairs.add(
                RecordPair(sources.left.get(left_id), sources.right.get(right_id)),
                1,
            )
        for left_id, right_id in negatives:
            pairs.add(
                RecordPair(sources.left.get(left_id), sources.right.get(right_id)),
                0,
            )
        training, validation, testing = split_three_way(
            pairs, seed=self.config.seed + 1
        )
        return MatchingTask(
            name=f"{self.profile.name}/fit",
            left=sources.left,
            right=sources.right,
            training=training,
            validation=validation,
            testing=testing,
        )

    def _fitted_payload(self, shard0: SourcePair | None) -> dict:
        """Fit on shard 0 (or reuse the journaled fit) -> matcher payload."""
        info = self._journal_info(_FIT_UNIT)
        if info is not None and isinstance(info.get("matcher"), dict):
            obs.inc("scale.fit_resumed")
            return info["matcher"]
        with obs.span("scale.fit", dataset=self.config.dataset_id):
            sources = (
                shard0
                if shard0 is not None
                else generate_shard(
                    self.profile, 0, self.config.shard_size, self._factory
                )
            )
            task = self._fit_task(sources)
            matcher = EsdeMatcher(self.config.matcher_variant)
            matcher.fit(task)
            payload = matcher.to_payload()
        if self.journal is not None:
            self.journal.mark_done(
                _FIT_UNIT, config=self.fingerprint, matcher=payload
            )
        return payload

    # -- per-shard pipeline --------------------------------------------------

    def _run_shard(
        self, shard_index: int, payload: dict, shard0: SourcePair | None
    ) -> ShardStats:
        start = time.perf_counter()
        with obs.span(
            "scale.shard",
            shard=shard_index,
            dataset=self.config.dataset_id,
        ):
            sources = (
                shard0
                if shard0 is not None and shard_index == 0
                else generate_shard(
                    self.profile,
                    shard_index,
                    self.config.shard_size,
                    self._factory,
                )
            )
            blocking = evaluate_blocking(
                self._blocker.candidates(sources), sources
            )

            # Label + predict the shard's candidates. The extractor hangs
            # off a per-shard shim task, so the FeatureStore (token and
            # q-gram planes, bitset scratch) is freed with the shard.
            shard_task = _ShardTask(sources.left.schema.attributes)
            matcher = EsdeMatcher.from_payload(payload, shard_task)
            pairs = LabeledPairSet()
            for left_id, right_id in sorted(blocking.candidates):
                pairs.add(
                    RecordPair(
                        sources.left.get(left_id), sources.right.get(right_id)
                    ),
                    1 if (left_id, right_id) in sources.matches else 0,
                )
            if len(pairs):
                predictions = matcher.predict(pairs)
                labels = pairs.labels
                tp = int(np.sum((predictions == 1) & (labels == 1)))
                fp = int(np.sum((predictions == 1) & (labels == 0)))
                fn_candidates = int(np.sum((predictions == 0) & (labels == 1)))
            else:
                tp = fp = fn_candidates = 0
            # Matches the blocker dropped never reach the matcher: they
            # are false negatives of the end-to-end pipeline.
            fn = fn_candidates + (
                sources.n_matches - blocking.n_matching_candidates
            )
            stats = ShardStats(
                shard_index=shard_index,
                n_left=len(sources.left),
                n_right=len(sources.right),
                n_matches=sources.n_matches,
                n_candidates=blocking.n_candidates,
                block_tp=blocking.n_matching_candidates,
                tp=tp,
                fp=fp,
                fn=fn,
                seconds=time.perf_counter() - start,
            )
        obs.inc("scale.shards")
        obs.inc("scale.records", stats.n_records)
        obs.observe("scale.shard_seconds", stats.seconds)
        if stats.seconds > 0:
            obs.gauge("scale.records_per_sec", stats.n_records / stats.seconds)
        return stats

    # -- driver --------------------------------------------------------------

    def run(self, max_shards: int | None = None) -> ScaleReport:
        """Run (or resume) the sweep; returns the reduced report.

        ``max_shards`` bounds how many shards this call processes —
        the kill/resume tests use it to stop at a shard boundary; a
        second ``run()`` picks up where the journal left off.
        """
        with obs.span(
            "scale.sweep",
            dataset=self.config.dataset_id,
            records=self.config.records,
            shards=self.n_shards,
        ):
            self._open_state()
            self.resumed_shards = 0
            for warning in self.guard.preflight():
                obs.annotate(scale_preflight=warning)

            # Shard 0 does double duty (fit + first sweep shard) when the
            # fit is not already journaled; generate it once.
            shard0: SourcePair | None = None
            if (
                self._journal_info(_FIT_UNIT) is None
                and (
                    self.journal is None
                    or self._journal_info(_shard_unit(0)) is None
                )
            ):
                shard0 = generate_shard(
                    self.profile, 0, self.config.shard_size, self._factory
                )
            payload = self._fitted_payload(shard0)

            stats: list[ShardStats] = []
            limit = self.n_shards if max_shards is None else min(
                self.n_shards, max_shards
            )
            processed = 0
            for shard_index in range(self.n_shards):
                unit = _shard_unit(shard_index)
                info = self._journal_info(unit)
                if info is not None:
                    stats.append(ShardStats.from_info(info))
                    self.resumed_shards += 1
                    continue
                if processed >= limit:
                    break
                self.guard.checkpoint(unit)
                shard_stats = self._run_shard(shard_index, payload, shard0)
                shard0 = None
                processed += 1
                stats.append(shard_stats)
                if self.journal is not None:
                    self.journal.mark_done(
                        unit, config=self.fingerprint, **shard_stats.to_info()
                    )
            report = ScaleReport(
                config=self.config,
                fingerprint=self.fingerprint,
                n_shards=self.n_shards,
                shards=tuple(stats),
                matcher_payload=payload,
                resumed_shards=self.resumed_shards,
            )
            if self.cache_dir is not None and report.complete:
                write_envelope(
                    self.cache_dir / SCALE_REPORT_NAME, report.state()
                )
        return report


def run_scale_sweep(
    config: ScaleConfig, cache_dir: Path | str | None = None
) -> ScaleReport:
    """One-call convenience wrapper around :class:`ShardedSweep`."""
    return ShardedSweep(config, cache_dir=cache_dir).run()
