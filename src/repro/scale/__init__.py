"""Million-record scale mode: streaming sharded sweeps (DESIGN.md §13).

``repro scale-up`` scales one established benchmark's shape to an
arbitrary record count and runs blocking + matching shard-by-shard: no
phase ever holds more than one shard of records, features or candidates
in memory, per-shard counts checkpoint through the runtime journal, and
the final PC/PQ/F1 is an exact reduction over journaled integers.
"""

from repro.scale.config import (
    SCALE_BLOCKER_SPECS,
    SCALE_MATCHER_VARIANTS,
    ScaleConfig,
    scale_profile,
)
from repro.scale.sweep import (
    SCALE_JOURNAL_NAME,
    SCALE_MANIFEST_NAME,
    SCALE_REPORT_NAME,
    ScaleReport,
    ShardedSweep,
    ShardStats,
    config_fingerprint,
    run_scale_sweep,
)

__all__ = [
    "SCALE_BLOCKER_SPECS",
    "SCALE_JOURNAL_NAME",
    "SCALE_MANIFEST_NAME",
    "SCALE_MATCHER_VARIANTS",
    "SCALE_REPORT_NAME",
    "ScaleConfig",
    "ScaleReport",
    "ShardedSweep",
    "ShardStats",
    "config_fingerprint",
    "run_scale_sweep",
    "scale_profile",
]
