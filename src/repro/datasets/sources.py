"""The 8 raw source-dataset pairs of Table V.

These are full two-source datasets with complete ground truth — the input to
the Section VI methodology (blocking -> tuning -> splitting -> assessment).
Unlike the established benchmarks they come with *no* candidate pairs:
DeepBlocker generates those.

Difficulty calibration mirrors Table V / Section VI-A:

* bibliographic pairs (``dblp_acm``, ``dblp_scholar``) are clean — blocking
  reaches high precision and the resulting benchmarks stay easy;
* product pairs (``abt_buy``, ``amazon_google``, ``walmart_amazon``) carry
  heavy synonym divergence and noise — the resulting benchmarks are the
  challenging ones;
* movie pairs (``imdb_tmdb``, ``imdb_tvdb``, ``tmdb_tvdb``) are noisy with
  missing values, forcing large K for 90% blocking recall (low PQ).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.entities import (
    DomainSpec,
    bibliographic_domain,
    movie_domain,
    product_domain,
    rich_product_domain,
    software_domain,
)
from repro.datasets.generator import (
    GeneratorProfile,
    SourcePair,
    generate_source_pair,
)
from repro.datasets.noise import NoiseModel


@dataclass(frozen=True)
class SourceProfile:
    """Generation recipe for one Table V source-dataset pair."""

    dataset_id: str
    origin: str
    domain: DomainSpec
    n_matches: int
    left_extra: int
    right_extra: int
    synonym_rate_right: float
    noise: NoiseModel
    family_fraction: float
    seed: int


_LIGHT = NoiseModel(typo_rate=0.02, drop_rate=0.01)
_PRODUCT = NoiseModel(
    typo_rate=0.10, drop_rate=0.07, abbreviate_rate=0.04, missing_rate=0.10
)
_MOVIE = NoiseModel(
    typo_rate=0.06, drop_rate=0.05, abbreviate_rate=0.04, missing_rate=0.10
)
_SCHOLAR = NoiseModel(typo_rate=0.05, drop_rate=0.04, missing_rate=0.05)

SOURCE_PROFILES: dict[str, SourceProfile] = {
    "abt_buy": SourceProfile(
        dataset_id="abt_buy",
        origin="Abt / Buy",
        domain=product_domain("abt_buy_src"),
        n_matches=270, left_extra=0, right_extra=0,
        synonym_rate_right=0.48, noise=_PRODUCT,
        family_fraction=0.60, seed=201,
    ),
    "amazon_google": SourceProfile(
        dataset_id="amazon_google",
        origin="Amazon / Google Products",
        domain=software_domain("amazon_google_src"),
        n_matches=276, left_extra=62, right_extra=250,
        synonym_rate_right=0.46, noise=_PRODUCT,
        family_fraction=0.70, seed=202,
    ),
    "dblp_acm": SourceProfile(
        dataset_id="dblp_acm",
        origin="DBLP / ACM",
        domain=bibliographic_domain("dblp_acm_src"),
        n_matches=556, left_extra=98, right_extra=18,
        synonym_rate_right=0.08, noise=_LIGHT,
        family_fraction=0.15, seed=203,
    ),
    "imdb_tmdb": SourceProfile(
        dataset_id="imdb_tmdb",
        origin="IMDB / TMDB",
        domain=movie_domain("imdb_tmdb_src",
                            ("title", "director", "actors", "year", "genre")),
        n_matches=200, left_extra=280, right_extra=360,
        synonym_rate_right=0.34, noise=_MOVIE,
        family_fraction=0.30, seed=204,
    ),
    "imdb_tvdb": SourceProfile(
        dataset_id="imdb_tvdb",
        origin="IMDB / TVDB",
        domain=movie_domain("imdb_tvdb_src",
                            ("title", "actors", "year", "genre")),
        n_matches=120, left_extra=350, right_extra=560,
        synonym_rate_right=0.36, noise=_MOVIE,
        family_fraction=0.30, seed=205,
    ),
    "tmdb_tvdb": SourceProfile(
        dataset_id="tmdb_tvdb",
        origin="TMDB / TVDB",
        domain=movie_domain(
            "tmdb_tvdb_src",
            ("title", "director", "actors", "year", "genre", "language"),
        ),
        n_matches=120, left_extra=250, right_extra=330,
        synonym_rate_right=0.34, noise=_MOVIE,
        family_fraction=0.45, seed=206,
    ),
    "walmart_amazon": SourceProfile(
        dataset_id="walmart_amazon",
        origin="Walmart / Amazon",
        domain=rich_product_domain("walmart_amazon_src"),
        n_matches=213, left_extra=340, right_extra=400,
        synonym_rate_right=0.42, noise=_PRODUCT,
        family_fraction=0.62, seed=207,
    ),
    "dblp_scholar": SourceProfile(
        dataset_id="dblp_scholar",
        origin="DBLP / Google Scholar",
        domain=bibliographic_domain("dblp_scholar_src"),
        n_matches=577, left_extra=52, right_extra=1800,
        synonym_rate_right=0.06, noise=_SCHOLAR,
        family_fraction=0.10, seed=208,
    ),
}

#: Canonical new-benchmark order of Table V: D_n1 .. D_n8.
SOURCE_ORDER: tuple[str, ...] = (
    "abt_buy",       # D_n1
    "amazon_google", # D_n2
    "dblp_acm",      # D_n3
    "imdb_tmdb",     # D_n4
    "imdb_tvdb",     # D_n5
    "tmdb_tvdb",     # D_n6
    "walmart_amazon",# D_n7
    "dblp_scholar",  # D_n8
)

#: D_nX label per source id.
NEW_BENCHMARK_LABELS: dict[str, str] = {
    source_id: f"Dn{index + 1}" for index, source_id in enumerate(SOURCE_ORDER)
}


def _scaled(value: int, size_factor: float, minimum: int = 0) -> int:
    return max(minimum, int(round(value * size_factor)))


def build_source_pair(dataset_id: str, size_factor: float = 1.0) -> SourcePair:
    """Generate one Table V source pair (deterministic per dataset id)."""
    if dataset_id not in SOURCE_PROFILES:
        raise KeyError(
            f"unknown source dataset {dataset_id!r}; known: {sorted(SOURCE_PROFILES)}"
        )
    if size_factor <= 0:
        raise ValueError(f"size_factor must be > 0, got {size_factor}")
    profile = SOURCE_PROFILES[dataset_id]
    generator_profile = GeneratorProfile(
        name=dataset_id,
        domain=profile.domain,
        n_matches=_scaled(profile.n_matches, size_factor, minimum=20),
        left_extra=_scaled(profile.left_extra, size_factor),
        right_extra=_scaled(profile.right_extra, size_factor),
        synonym_rate_left=0.0,
        synonym_rate_right=profile.synonym_rate_right,
        noise_left=profile.noise,
        noise_right=profile.noise,
        family_fraction=profile.family_fraction,
        seed=profile.seed,
    )
    return generate_source_pair(generator_profile)
