"""Domain specifications and ground-truth entity factories.

An *entity* is the latent real-world object both data sources describe. It is
represented symbolically — per attribute, a sequence of *parts* that are
either concept references (resolved to surface forms at render time) or
literals (model codes, years, prices, phone numbers, which both sources copy
verbatim up to noise).

Entities are generated partly in *families*: variations of a base entity that
share most attributes but differ in a discriminating detail (another model
code, another year). Families are what make nearest-neighbour negatives
genuinely hard, the same way real product catalogues contain near-identical
variants.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.datasets.vocabulary import ConceptVocabulary, build_vocabulary

_CODE_LETTERS = "abcdefghjkmnpqrstuvwxyz"

#: Entities per family block in shard-deterministic generation. Family
#: variants draw their base only from earlier entities of the *same*
#: block, so any index range can be regenerated from at most one block
#: prefix — the property that makes sharded generation bit-identical to
#: monolithic generation regardless of how entities are grouped into
#: shards (``repro.scale``).
FAMILY_BLOCK = 64

#: Stream tags separating the per-entity structure RNG from the
#: per-entity render RNG (``repro.datasets.generator``); both derive
#: from ``SeedSequence((seed, tag, entity_index))`` so every entity's
#: draws are independent of every other entity's.
STRUCTURE_STREAM = 0x51
RENDER_STREAM = 0x52


@dataclass(frozen=True)
class Part:
    """One unit of an attribute value: a concept reference XOR a literal."""

    concept_id: int | None = None
    literal: str | None = None

    def __post_init__(self) -> None:
        if (self.concept_id is None) == (self.literal is None):
            raise ValueError("a Part is either a concept reference or a literal")


@dataclass(frozen=True)
class AttributeSpec:
    """How one attribute of a domain is composed.

    ``kind`` selects the composition rule:

    - ``concepts``: ``min_parts..max_parts`` concepts from ``pool``;
    - ``person``: a first+last name (pools ``first_name``/``last_name``),
      repeated ``min_parts..max_parts`` times (authors, actor lists);
    - ``code``: an alphanumeric model/product code literal;
    - ``year``: a four-digit year literal;
    - ``price``: a decimal price literal;
    - ``phone``: a phone-number literal;
    - ``text``: a long concept sequence from ``pool`` (textual benchmarks).
    """

    name: str
    kind: str
    pool: str | None = None
    min_parts: int = 1
    max_parts: int = 1
    #: append a discriminative alphanumeric code literal after the concept
    #: parts (product names like "sony turntable pslx350h").
    with_code: bool = False

    def __post_init__(self) -> None:
        allowed = {"concepts", "person", "code", "year", "price", "phone", "text"}
        if self.kind not in allowed:
            raise ValueError(f"unknown attribute kind {self.kind!r}")
        if self.kind in {"concepts", "text"} and self.pool is None:
            raise ValueError(f"attribute {self.name!r} of kind {self.kind!r} needs a pool")
        if self.min_parts < 1 or self.max_parts < self.min_parts:
            raise ValueError(
                f"bad part range [{self.min_parts}, {self.max_parts}] "
                f"for attribute {self.name!r}"
            )


@dataclass(frozen=True)
class DomainSpec:
    """A domain: its attributes, vocabulary pools and family behaviour."""

    name: str
    attributes: tuple[AttributeSpec, ...]
    pools: dict[str, int]
    title_attribute: str
    #: attributes regenerated when spawning a family variant (the
    #: discriminating details); everything else is shared within a family.
    variant_attributes: tuple[str, ...]

    def attribute_names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.attributes)


@dataclass(frozen=True)
class Entity:
    """A latent real-world object: per-attribute part sequences."""

    entity_id: int
    parts: dict[str, tuple[Part, ...]]


class EntityFactory:
    """Generates ground-truth entities for a domain."""

    def __init__(self, domain: DomainSpec, seed: int = 0) -> None:
        self.domain = domain
        self.seed = seed
        self.vocabulary: ConceptVocabulary = build_vocabulary(
            name=domain.name,
            pools=domain.pools,
            synonym_fraction=0.45,
            homograph_fraction=0.03,
            seed=seed,
        )

    def generate(
        self,
        n_entities: int,
        family_fraction: float = 0.3,
        rng: np.random.Generator | None = None,
    ) -> list[Entity]:
        """Generate *n_entities* entities; a fraction are family variants.

        A family variant copies a previously generated entity and
        regenerates only the domain's ``variant_attributes``.
        """
        if n_entities < 1:
            raise ValueError(f"n_entities must be >= 1, got {n_entities}")
        if not 0.0 <= family_fraction <= 1.0:
            raise ValueError(
                f"family_fraction must be in [0, 1], got {family_fraction}"
            )
        if rng is None:
            rng = np.random.default_rng(self.seed + 1)
        entities: list[Entity] = []
        for index in range(n_entities):
            if entities and rng.random() < family_fraction:
                base = entities[int(rng.integers(0, len(entities)))]
                entities.append(self._variant_of(base, index, rng))
            else:
                entities.append(self._fresh(index, rng))
        return entities

    def entity_rng(self, entity_index: int) -> np.random.Generator:
        """The structure RNG of one entity (shard-deterministic path).

        Derived from ``(seed, STRUCTURE_STREAM, entity_index)`` only, so
        an entity's identity never depends on which shard generated it.
        """
        return np.random.default_rng(
            np.random.SeedSequence((self.seed, STRUCTURE_STREAM, entity_index))
        )

    def entity_range(
        self,
        lo: int,
        hi: int,
        family_fraction: float = 0.3,
        block_size: int = FAMILY_BLOCK,
    ) -> Iterator[Entity]:
        """Yield entities ``lo <= index < hi`` shard-deterministically.

        Unlike :meth:`generate` — whose single sequential RNG makes every
        entity depend on all of its predecessors — each entity here draws
        from its own :meth:`entity_rng`, and family variants pick their
        base only among earlier entities of the same ``block_size`` block.
        Regenerating an arbitrary range therefore costs at most one block
        prefix of extra structure work and yields bit-identical entities
        for every grouping of indexes into ranges.
        """
        if lo < 0 or hi < lo:
            raise ValueError(f"bad entity range [{lo}, {hi})")
        if not 0.0 <= family_fraction <= 1.0:
            raise ValueError(
                f"family_fraction must be in [0, 1], got {family_fraction}"
            )
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        index = (lo // block_size) * block_size
        block: list[Entity] = []
        while index < hi:
            if index % block_size == 0:
                block = []
            rng = self.entity_rng(index)
            if block and rng.random() < family_fraction:
                base = block[int(rng.integers(0, len(block)))]
                entity = self._variant_of(base, index, rng)
            else:
                entity = self._fresh(index, rng)
            block.append(entity)
            if index >= lo:
                yield entity
            index += 1

    def _fresh(self, entity_id: int, rng: np.random.Generator) -> Entity:
        parts = {
            spec.name: self._make_parts(spec, rng)
            for spec in self.domain.attributes
        }
        return Entity(entity_id=entity_id, parts=parts)

    def _variant_of(
        self, base: Entity, entity_id: int, rng: np.random.Generator
    ) -> Entity:
        """A family variant: shared identity, fresh discriminating details.

        Attributes listed in ``variant_attributes`` are regenerated wholly;
        in addition every code literal (``kind='code'`` or ``with_code``) is
        refreshed, so e.g. a product variant keeps its name words but gets a
        new model number — the hardest kind of non-match.
        """
        parts = dict(base.parts)
        for spec in self.domain.attributes:
            if spec.name in self.domain.variant_attributes:
                parts[spec.name] = self._make_parts(spec, rng)
            elif spec.kind == "code":
                parts[spec.name] = self._make_parts(spec, rng)
            elif spec.with_code:
                kept = parts[spec.name][:-1]
                parts[spec.name] = kept + (self._make_code(rng),)
        return Entity(entity_id=entity_id, parts=parts)

    def _make_code(self, rng: np.random.Generator) -> Part:
        letters = "".join(
            _CODE_LETTERS[int(rng.integers(0, len(_CODE_LETTERS)))] for __ in range(2)
        )
        return Part(literal=f"{letters}{int(rng.integers(100, 10000))}")

    def _make_parts(
        self, spec: AttributeSpec, rng: np.random.Generator
    ) -> tuple[Part, ...]:
        count = int(rng.integers(spec.min_parts, spec.max_parts + 1))
        if spec.kind in {"concepts", "text"}:
            assert spec.pool is not None
            parts = tuple(
                Part(concept_id=self.vocabulary.sample(spec.pool, rng).concept_id)
                for __ in range(count)
            )
            if spec.with_code:
                parts = parts + (self._make_code(rng),)
            return parts
        if spec.kind == "person":
            parts: list[Part] = []
            for __ in range(count):
                parts.append(
                    Part(
                        concept_id=self.vocabulary.sample(
                            "first_name", rng
                        ).concept_id
                    )
                )
                parts.append(
                    Part(
                        concept_id=self.vocabulary.sample(
                            "last_name", rng
                        ).concept_id
                    )
                )
            return tuple(parts)
        if spec.kind == "code":
            letters = "".join(
                _CODE_LETTERS[int(rng.integers(0, len(_CODE_LETTERS)))]
                for __ in range(2)
            )
            digits = int(rng.integers(100, 10000))
            return (Part(literal=f"{letters}{digits}"),)
        if spec.kind == "year":
            return (Part(literal=str(int(rng.integers(1950, 2024)))),)
        if spec.kind == "price":
            price = rng.integers(5, 2000) + rng.choice([0.0, 0.49, 0.95, 0.99])
            return (Part(literal=f"{price:.2f}"),)
        if spec.kind == "phone":
            area = int(rng.integers(200, 999))
            mid = int(rng.integers(200, 999))
            tail = int(rng.integers(1000, 9999))
            return (Part(literal=f"{area}-{mid}-{tail}"),)
        raise AssertionError(f"unhandled kind {spec.kind!r}")


# --------------------------------------------------------------------------
# Domain definitions. Pool sizes trade realism (rich vocabularies) against
# determinism and speed; names follow the public datasets they emulate.
# --------------------------------------------------------------------------


def product_domain(name: str = "products") -> DomainSpec:
    """Consumer-product catalogues (Abt-Buy, Walmart-Amazon style)."""
    return DomainSpec(
        name=name,
        attributes=(
            AttributeSpec(
                "name", "concepts", pool="name_word",
                min_parts=2, max_parts=4, with_code=True,
            ),
            AttributeSpec(
                "description", "concepts", pool="descriptor", min_parts=4, max_parts=10
            ),
            AttributeSpec("price", "price"),
        ),
        pools={"name_word": 150, "descriptor": 260},
        title_attribute="name",
        variant_attributes=("price",),
    )


def rich_product_domain(name: str = "rich_products") -> DomainSpec:
    """Products with type/model structure (Walmart-Amazon has 5 attributes)."""
    return DomainSpec(
        name=name,
        attributes=(
            AttributeSpec("title", "concepts", pool="descriptor", min_parts=3, max_parts=6),
            AttributeSpec("brand", "concepts", pool="brand", min_parts=1, max_parts=1),
            AttributeSpec("category", "concepts", pool="product_type", min_parts=1, max_parts=2),
            AttributeSpec("modelno", "code"),
            AttributeSpec("price", "price"),
        ),
        pools={"brand": 50, "product_type": 40, "descriptor": 220},
        title_attribute="title",
        variant_attributes=("modelno", "price"),
    )


def software_domain(name: str = "software") -> DomainSpec:
    """Software products (Amazon-Google style, 3-4 attributes)."""
    return DomainSpec(
        name=name,
        attributes=(
            AttributeSpec(
                "title", "concepts", pool="descriptor",
                min_parts=2, max_parts=6, with_code=True,
            ),
            AttributeSpec("manufacturer", "concepts", pool="brand", min_parts=1, max_parts=1),
            AttributeSpec("price", "price"),
        ),
        pools={"brand": 45, "descriptor": 200},
        title_attribute="title",
        variant_attributes=("price",),
    )


def bibliographic_domain(name: str = "bibliographic") -> DomainSpec:
    """Publications (DBLP-ACM, DBLP-Scholar style, 4 attributes)."""
    return DomainSpec(
        name=name,
        attributes=(
            AttributeSpec("title", "concepts", pool="topic", min_parts=5, max_parts=9),
            AttributeSpec("authors", "person", min_parts=1, max_parts=3),
            AttributeSpec("venue", "concepts", pool="venue", min_parts=1, max_parts=1),
            AttributeSpec("year", "year"),
        ),
        pools={"topic": 320, "venue": 35, "first_name": 80, "last_name": 160},
        title_attribute="title",
        variant_attributes=("year", "venue"),
    )


def music_domain(name: str = "music") -> DomainSpec:
    """Songs (iTunes-Amazon style, 8 attributes)."""
    return DomainSpec(
        name=name,
        attributes=(
            AttributeSpec("song_name", "concepts", pool="song_word", min_parts=1, max_parts=4),
            AttributeSpec("artist_name", "person", min_parts=1, max_parts=1),
            AttributeSpec("album_name", "concepts", pool="album_word", min_parts=1, max_parts=3),
            AttributeSpec("genre", "concepts", pool="genre", min_parts=1, max_parts=2),
            AttributeSpec("price", "price"),
            AttributeSpec("copyright", "concepts", pool="label", min_parts=1, max_parts=2),
            AttributeSpec("time", "code"),
            AttributeSpec("released", "year"),
        ),
        pools={
            "song_word": 260,
            "album_word": 140,
            "genre": 18,
            "label": 40,
            "first_name": 70,
            "last_name": 130,
        },
        title_attribute="song_name",
        variant_attributes=("song_name", "time", "price"),
    )


def beer_domain(name: str = "beer") -> DomainSpec:
    """Beers (Beer benchmark, 4 attributes)."""
    return DomainSpec(
        name=name,
        attributes=(
            AttributeSpec("beer_name", "concepts", pool="beer_word", min_parts=1, max_parts=3),
            AttributeSpec("brew_factory_name", "concepts", pool="brewery", min_parts=1, max_parts=2),
            AttributeSpec("style", "concepts", pool="style", min_parts=1, max_parts=1),
            AttributeSpec("abv", "price"),
        ),
        pools={"beer_word": 160, "brewery": 70, "style": 24},
        title_attribute="beer_name",
        variant_attributes=("style", "abv"),
    )


def restaurant_domain(name: str = "restaurants") -> DomainSpec:
    """Restaurants (Fodors-Zagats style, 6 attributes)."""
    return DomainSpec(
        name=name,
        attributes=(
            AttributeSpec("name", "concepts", pool="restaurant_word", min_parts=1, max_parts=3),
            AttributeSpec("addr", "concepts", pool="street", min_parts=2, max_parts=3),
            AttributeSpec("city", "concepts", pool="city", min_parts=1, max_parts=1),
            AttributeSpec("phone", "phone"),
            AttributeSpec("type", "concepts", pool="cuisine", min_parts=1, max_parts=1),
            AttributeSpec("class", "code"),
        ),
        pools={"restaurant_word": 170, "street": 120, "city": 25, "cuisine": 20},
        title_attribute="name",
        variant_attributes=("class",),
    )


def movie_domain(name: str, attributes: tuple[str, ...]) -> DomainSpec:
    """Movies/TV (IMDB/TMDB/TVDB style) with a configurable attribute subset.

    *attributes* selects from: title, director, actors, year, genre,
    duration, language — the three Table V movie datasets expose 4-6 of
    these.
    """
    catalogue = {
        "title": AttributeSpec("title", "concepts", pool="title_word", min_parts=1, max_parts=4),
        "director": AttributeSpec("director", "person", min_parts=1, max_parts=1),
        "actors": AttributeSpec("actors", "person", min_parts=2, max_parts=4),
        "year": AttributeSpec("year", "year"),
        "genre": AttributeSpec("genre", "concepts", pool="genre", min_parts=1, max_parts=3),
        "duration": AttributeSpec("duration", "code"),
        "language": AttributeSpec("language", "concepts", pool="language", min_parts=1, max_parts=1),
    }
    unknown = set(attributes) - set(catalogue)
    if unknown:
        raise ValueError(f"unknown movie attributes {sorted(unknown)}")
    return DomainSpec(
        name=name,
        attributes=tuple(catalogue[attr] for attr in attributes),
        pools={
            "title_word": 300,
            "genre": 20,
            "language": 12,
            "first_name": 90,
            "last_name": 170,
        },
        title_attribute="title",
        variant_attributes=("year",),
    )


def company_domain(name: str = "company") -> DomainSpec:
    """Long-text company descriptions (Company benchmark, 1 attribute)."""
    return DomainSpec(
        name=name,
        attributes=(
            AttributeSpec("content", "text", pool="content_word", min_parts=10, max_parts=80),
        ),
        pools={"content_word": 900},
        title_attribute="content",
        variant_attributes=(),
    )
