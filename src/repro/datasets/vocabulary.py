"""Concept vocabularies with synonym clusters and homographs.

A *concept* is a unit of meaning with one or more *surface forms* (synonyms):
think "laptop" / "notebook". The generator describes entities as sequences of
concepts; the two data sources of a clean-clean ER dataset may render the
same concept with different surfaces. Token-overlap measures only see the
surfaces; the synthetic pre-trained language model (:mod:`repro.embeddings`)
sees the clusters, giving embedding-based matchers the semantic advantage
the paper attributes to real pre-trained models.

A *homograph* is a surface form shared by two concepts ("bank" the
institution / "bank" of a river) — static embeddings conflate the two,
context-aware embeddings disambiguate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"


def _make_word(
    rng: np.random.Generator, min_syllables: int = 2, max_syllables: int = 3
) -> str:
    """A pronounceable pseudo-word of 2-3 consonant-vowel(-consonant) syllables."""
    syllables = rng.integers(min_syllables, max_syllables + 1)
    parts = []
    for __ in range(syllables):
        part = rng.choice(list(_CONSONANTS)) + rng.choice(list(_VOWELS))
        if rng.random() < 0.35:
            part += rng.choice(list(_CONSONANTS))
        parts.append(part)
    return "".join(parts)


@dataclass(frozen=True)
class Concept:
    """A meaning with its surface forms; ``surfaces[0]`` is canonical."""

    concept_id: int
    pool: str
    surfaces: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.surfaces:
            raise ValueError(f"concept {self.concept_id} has no surface forms")

    @property
    def canonical(self) -> str:
        return self.surfaces[0]


class ConceptVocabulary:
    """All concepts of a domain, organized in named pools.

    Pools model attribute-specific vocabularies: a product domain has a
    ``brand`` pool, a ``descriptor`` pool and so on. Surfaces map back to
    every concept using them (more than one concept for homographs).
    """

    def __init__(self, name: str, concepts: list[Concept] | None = None) -> None:
        self.name = name
        self.concepts: list[Concept] = []
        self._by_id: dict[int, Concept] = {}
        self._pools: dict[str, list[Concept]] = {}
        self._surface_index: dict[str, list[Concept]] = {}
        for concept in concepts or []:
            self.add(concept)

    def add(self, concept: Concept) -> None:
        """Register a new concept (ids must be unique)."""
        if concept.concept_id in self._by_id:
            raise ValueError(f"duplicate concept id {concept.concept_id}")
        self.concepts.append(concept)
        self._by_id[concept.concept_id] = concept
        self._pools.setdefault(concept.pool, []).append(concept)
        for surface in concept.surfaces:
            self._surface_index.setdefault(surface, []).append(concept)

    def replace(self, concept_id: int, updated: Concept) -> None:
        """Swap a concept for an updated version, rebuilding all indices."""
        if updated.concept_id != concept_id:
            raise ValueError(
                f"updated concept has id {updated.concept_id}, expected {concept_id}"
            )
        if concept_id not in self._by_id:
            raise KeyError(f"no concept with id {concept_id}")
        remaining = [
            concept if concept.concept_id != concept_id else updated
            for concept in self.concepts
        ]
        self.concepts = []
        self._by_id = {}
        self._pools = {}
        self._surface_index = {}
        for concept in remaining:
            self.add(concept)

    def get(self, concept_id: int) -> Concept:
        """Look up a concept by id (raises ``KeyError`` when absent)."""
        return self._by_id[concept_id]

    def pool(self, name: str) -> list[Concept]:
        """All concepts of a pool (raises ``KeyError`` for unknown pools)."""
        return list(self._pools[name])

    def pool_names(self) -> list[str]:
        return list(self._pools)

    def concepts_for_surface(self, surface: str) -> list[Concept]:
        """Concepts whose surface forms include *surface* (several = homograph)."""
        return list(self._surface_index.get(surface, []))

    def surfaces(self) -> list[str]:
        """Every known surface form."""
        return list(self._surface_index)

    def homograph_surfaces(self) -> list[str]:
        """Surfaces shared by more than one concept."""
        return [
            surface
            for surface, owners in self._surface_index.items()
            if len(owners) > 1
        ]

    def sample(self, pool: str, rng: np.random.Generator) -> Concept:
        """Draw one concept uniformly from *pool*."""
        members = self._pools[pool]
        return members[int(rng.integers(0, len(members)))]


def build_vocabulary(
    name: str,
    pools: dict[str, int],
    synonym_fraction: float = 0.3,
    max_synonyms: int = 3,
    homograph_fraction: float = 0.02,
    seed: int = 0,
) -> ConceptVocabulary:
    """Generate a vocabulary with the given pool sizes.

    Parameters
    ----------
    pools:
        Mapping pool name -> number of concepts.
    synonym_fraction:
        Fraction of concepts that get extra surface forms (2..max_synonyms).
    homograph_fraction:
        Fraction of concepts (per pool) that additionally adopt a surface
        form belonging to another concept of the same pool, creating
        polysemy.
    """
    if not 0.0 <= synonym_fraction <= 1.0:
        raise ValueError(f"synonym_fraction must be in [0, 1], got {synonym_fraction}")
    if not 0.0 <= homograph_fraction <= 1.0:
        raise ValueError(
            f"homograph_fraction must be in [0, 1], got {homograph_fraction}"
        )
    rng = np.random.default_rng(seed)
    vocabulary = ConceptVocabulary(name=name)
    used_surfaces: set[str] = set()
    concept_id = 0

    def fresh_word() -> str:
        while True:
            word = _make_word(rng)
            if word not in used_surfaces:
                used_surfaces.add(word)
                return word

    for pool_name, pool_size in pools.items():
        if pool_size < 1:
            raise ValueError(f"pool {pool_name!r} must have >= 1 concepts")
        pool_concepts: list[Concept] = []
        for __ in range(pool_size):
            n_surfaces = 1
            if rng.random() < synonym_fraction:
                n_surfaces = int(rng.integers(2, max_synonyms + 1))
            surfaces = tuple(fresh_word() for __ in range(n_surfaces))
            concept = Concept(concept_id=concept_id, pool=pool_name, surfaces=surfaces)
            concept_id += 1
            pool_concepts.append(concept)
            vocabulary.add(concept)

        # Homographs: a concept adopts another concept's canonical surface as
        # an extra alias, so that surface now belongs to two meanings.
        n_homographs = int(round(homograph_fraction * pool_size))
        if n_homographs and pool_size >= 2:
            for __ in range(n_homographs):
                borrower = pool_concepts[int(rng.integers(0, pool_size))]
                lender = pool_concepts[int(rng.integers(0, pool_size))]
                if borrower.concept_id == lender.concept_id:
                    continue
                if lender.canonical in borrower.surfaces:
                    continue
                updated = Concept(
                    concept_id=borrower.concept_id,
                    pool=borrower.pool,
                    surfaces=borrower.surfaces + (lender.canonical,),
                )
                vocabulary.replace(borrower.concept_id, updated)
                pool_concepts[pool_concepts.index(borrower)] = updated
    return vocabulary
