"""Benchmark substrate: synthetic equivalents of the public ER datasets.

The reproduction environment has no access to the DeepMatcher benchmark
files, so this package generates deterministic synthetic clean-clean ER
datasets whose *difficulty structure* is calibrated to the paper's findings
(see DESIGN.md, Substitutions). The key levers are:

* **synonym divergence** — the two sources describe the same entity with
  different surface forms drawn from the vocabulary's synonym clusters,
  which lexical similarity cannot bridge but the (synthetic) pre-trained
  language model can;
* **noise channels** — typos, token drops, abbreviations, missing values and
  (for the dirty variants) attribute-value misplacement;
* **negative-pair sampling** — random negatives emulate loose blocking and
  yield linearly separable benchmarks, nearest-neighbour negatives emulate
  strict blocking and yield hard ones.

`established` builds the 13 benchmarks of Table III (D_s1..D_s7, D_d1..D_d4,
D_t1, D_t2); `sources` builds the 8 raw dataset pairs of Table V that the
Section VI methodology turns into the new benchmarks D_n1..D_n8.
"""

from repro.datasets.vocabulary import Concept, ConceptVocabulary, build_vocabulary
from repro.datasets.noise import NoiseModel
from repro.datasets.generator import (
    GeneratorProfile,
    SourcePair,
    build_task_from_sources,
    generate_source_pair,
    sample_candidate_pairs,
)
from repro.datasets.registry import (
    ESTABLISHED_DATASET_IDS,
    SOURCE_DATASET_IDS,
    clear_cache,
    load_established_task,
    load_source_pair,
)

__all__ = [
    "Concept",
    "ConceptVocabulary",
    "ESTABLISHED_DATASET_IDS",
    "GeneratorProfile",
    "NoiseModel",
    "SOURCE_DATASET_IDS",
    "SourcePair",
    "build_task_from_sources",
    "build_vocabulary",
    "clear_cache",
    "generate_source_pair",
    "load_established_task",
    "load_source_pair",
    "sample_candidate_pairs",
]
