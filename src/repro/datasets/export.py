"""Batch export of benchmarks to the public CSV layout.

The paper releases its datasets publicly; this module is the equivalent
release tool: it materializes any subset of the established benchmarks
and/or methodology-built new benchmarks as ``tableA/tableB/train/valid/test``
CSV directories plus a manifest describing each dataset's provenance.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.methodology import create_benchmark
from repro.data.io import save_task
from repro.datasets.registry import (
    ESTABLISHED_DATASET_IDS,
    NEW_BENCHMARK_LABELS,
    SOURCE_DATASET_IDS,
    load_established_task,
    load_source_pair,
)


def export_benchmarks(
    directory: Path | str,
    established: tuple[str, ...] = ESTABLISHED_DATASET_IDS,
    sources: tuple[str, ...] = (),
    size_factor: float = 1.0,
    seed: int = 0,
) -> dict[str, dict[str, object]]:
    """Write the requested benchmarks under *directory*.

    Established ids are exported as-is; source ids are first run through the
    Section VI methodology. Returns (and writes as ``manifest.json``) a
    manifest mapping dataset directory name -> provenance summary.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, dict[str, object]] = {}

    for dataset_id in established:
        task = load_established_task(dataset_id, size_factor)
        save_task(task, target / dataset_id)
        stats = task.statistics()
        manifest[dataset_id] = {
            "kind": "established",
            "pairs": len(task.all_pairs()),
            "imbalance_ratio": stats.imbalance_ratio,
            "attributes": list(task.attributes),
        }

    for source_id in sources:
        if source_id not in SOURCE_DATASET_IDS:
            raise KeyError(f"unknown source dataset {source_id!r}")
        label = NEW_BENCHMARK_LABELS[source_id]
        benchmark = create_benchmark(
            load_source_pair(source_id, size_factor), label=label, seed=seed
        )
        save_task(benchmark.task, target / label)
        manifest[label] = {
            "kind": "new",
            "source": source_id,
            "pairs": len(benchmark.task.all_pairs()),
            "imbalance_ratio": benchmark.imbalance_ratio,
            "blocking": benchmark.blocking.config.describe(),
            "pair_completeness": benchmark.blocking.pair_completeness,
            "pairs_quality": benchmark.blocking.pairs_quality,
        }

    (target / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
    )
    return manifest
