"""Two-source clean-clean ER dataset generation and candidate-pair sampling.

The generator realizes the substitution described in DESIGN.md: it produces
datasets whose *difficulty structure* is controlled by three levers —
synonym divergence between the sources, token/attribute noise, and the
negative-pair sampling strategy (random negatives emulate loose blocking;
nearest-neighbour "hard" negatives emulate strict blocking).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.records import Record, RecordStore, Schema
from repro.data.splits import split_three_way
from repro.data.task import MatchingTask
from repro.datasets.entities import (
    RENDER_STREAM,
    DomainSpec,
    Entity,
    EntityFactory,
)
from repro.datasets.noise import NoiseModel
from repro.datasets.vocabulary import ConceptVocabulary
from repro.text.similarity import jaccard_similarity


@dataclass(frozen=True)
class GeneratorProfile:
    """Everything needed to generate one two-source dataset.

    ``n_matches`` entities appear in both sources; ``left_extra`` /
    ``right_extra`` entities appear in one source only, so
    ``|D1| = n_matches + left_extra`` and ``|D2| = n_matches + right_extra``.

    ``synonym_rate_left`` / ``synonym_rate_right`` are the probabilities that
    a concept is rendered with a non-canonical surface form in the
    respective source: the higher the (combined) rate, the lower the lexical
    overlap between duplicates, and the bigger the advantage of the
    embedding-based matchers that know the synonym clusters.
    """

    name: str
    domain: DomainSpec
    n_matches: int
    left_extra: int
    right_extra: int
    synonym_rate_left: float = 0.0
    synonym_rate_right: float = 0.25
    noise_left: NoiseModel = field(default_factory=NoiseModel)
    noise_right: NoiseModel = field(default_factory=NoiseModel)
    family_fraction: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_matches < 1:
            raise ValueError(f"n_matches must be >= 1, got {self.n_matches}")
        if self.left_extra < 0 or self.right_extra < 0:
            raise ValueError("left_extra/right_extra must be >= 0")
        for rate_name in ("synonym_rate_left", "synonym_rate_right"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1], got {rate}")


@dataclass(frozen=True)
class SourcePair:
    """Two duplicate-free sources plus the complete ground truth.

    ``matches`` holds (left_id, right_id) key pairs; because each entity
    appears at most once per source, matches form a partial 1:1 mapping —
    the record-linkage setting of the paper. ``vocabulary`` is the concept
    vocabulary the sources were rendered from; the synthetic language model
    treats it as its pre-training corpus (``None`` for externally loaded
    data, in which case embedders fall back to pure subword vectors).
    """

    name: str
    left: RecordStore
    right: RecordStore
    matches: frozenset[tuple[str, str]]
    vocabulary: "ConceptVocabulary | None" = None

    @property
    def n_matches(self) -> int:
        return len(self.matches)


class _Renderer:
    """Renders entities into records for one source."""

    def __init__(
        self,
        factory: EntityFactory,
        source: str,
        synonym_rate: float,
        noise: NoiseModel,
    ) -> None:
        self.factory = factory
        self.source = source
        self.synonym_rate = synonym_rate
        self.noise = noise

    def render(self, entity: Entity, rng: np.random.Generator) -> Record:
        values: dict[str, str] = {}
        for spec in self.factory.domain.attributes:
            if self.noise.drop_attribute(rng):
                values[spec.name] = ""
                continue
            tokens: list[str] = []
            for part in entity.parts[spec.name]:
                if part.literal is not None:
                    tokens.append(part.literal)
                    continue
                concept = self.factory.vocabulary.get(part.concept_id)
                if len(concept.surfaces) > 1 and rng.random() < self.synonym_rate:
                    alternatives = concept.surfaces[1:]
                    tokens.append(
                        alternatives[int(rng.integers(0, len(alternatives)))]
                    )
                else:
                    tokens.append(concept.canonical)
            tokens = self.noise.corrupt_tokens(tokens, rng)
            values[spec.name] = " ".join(tokens)
        values = self.noise.misplace_values(
            values, self.factory.domain.title_attribute, rng
        )
        return Record(
            record_id=f"{self.source}{entity.entity_id}",
            source=self.source,
            values=values,
        )


def generate_source_pair(
    profile: GeneratorProfile, shard_size: int | None = None
) -> SourcePair:
    """Generate the two sources and ground truth for *profile*.

    With ``shard_size=None`` (the default) generation runs the classic
    sequential-RNG path every existing profile and cached baseline was
    calibrated against. Passing a ``shard_size`` switches to the
    shard-deterministic path of :func:`generate_shard` and merges all
    shards into one :class:`SourcePair` — the records are bit-identical
    for **every** choice of ``shard_size`` (the ``repro.scale`` tentpole
    invariant), but form a different (equally valid) sample than the
    legacy path.
    """
    if shard_size is not None:
        return _generate_sharded(profile, shard_size)
    factory = EntityFactory(profile.domain, seed=profile.seed)
    rng = np.random.default_rng(profile.seed + 17)
    total = profile.n_matches + profile.left_extra + profile.right_extra
    entities = factory.generate(
        total, family_fraction=profile.family_fraction, rng=rng
    )
    shared = entities[: profile.n_matches]
    left_only = entities[profile.n_matches : profile.n_matches + profile.left_extra]
    right_only = entities[profile.n_matches + profile.left_extra :]

    schema = Schema(profile.domain.attribute_names())
    left_renderer = _Renderer(
        factory, "a", profile.synonym_rate_left, profile.noise_left
    )
    right_renderer = _Renderer(
        factory, "b", profile.synonym_rate_right, profile.noise_right
    )

    left = RecordStore(f"{profile.name}/A", schema)
    right = RecordStore(f"{profile.name}/B", schema)
    matches: set[tuple[str, str]] = set()
    for entity in shared:
        left_record = left_renderer.render(entity, rng)
        right_record = right_renderer.render(entity, rng)
        left.add(left_record)
        right.add(right_record)
        matches.add((left_record.record_id, right_record.record_id))
    for entity in left_only:
        left.add(left_renderer.render(entity, rng))
    for entity in right_only:
        right.add(right_renderer.render(entity, rng))
    return SourcePair(
        name=profile.name,
        left=left,
        right=right,
        matches=frozenset(matches),
        vocabulary=factory.vocabulary,
    )


# ---------------------------------------------------------------------------
# Shard-deterministic generation (repro.scale)
# ---------------------------------------------------------------------------


def total_entities(profile: GeneratorProfile) -> int:
    """How many latent entities *profile* describes (shared + extras)."""
    return profile.n_matches + profile.left_extra + profile.right_extra


def shard_count(profile: GeneratorProfile, shard_size: int) -> int:
    """Number of shards covering *profile* at *shard_size* entities each."""
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    total = total_entities(profile)
    return (total + shard_size - 1) // shard_size


def _render_rng(profile: GeneratorProfile, entity_index: int) -> np.random.Generator:
    """The render RNG of one entity: depends on the entity index only.

    Rendering draws (synonym choices, noise corruption) come from a
    per-entity stream — ``SeedSequence((seed, RENDER_STREAM, index))`` —
    so a record's bytes never depend on which shard rendered it. Shared
    entities render left first, then right, from the same stream.
    """
    return np.random.default_rng(
        np.random.SeedSequence((profile.seed, RENDER_STREAM, entity_index))
    )


def generate_shard(
    profile: GeneratorProfile,
    shard_index: int,
    shard_size: int,
    factory: EntityFactory | None = None,
) -> SourcePair:
    """Generate one shard of *profile* as a self-contained source pair.

    Shard ``k`` covers entity indexes ``[k * shard_size, (k+1) *
    shard_size)`` (clipped to the profile's total). Each entity derives
    its structure and render RNGs from ``(seed, stream, entity_index)``
    alone and family variants stay within fixed
    :data:`~repro.datasets.entities.FAMILY_BLOCK` blocks, so the records
    produced for an entity are bit-identical no matter how entities are
    grouped into shards. Matches never cross shards: a shared entity
    renders its left and right record in the same shard.

    Pass a pre-built *factory* to amortize vocabulary construction
    across shards (it is derived from the profile seed either way).
    """
    total = total_entities(profile)
    n_shards = shard_count(profile, shard_size)
    if not 0 <= shard_index < n_shards:
        raise ValueError(
            f"shard_index {shard_index} out of range for {n_shards} shard(s)"
        )
    if factory is None:
        factory = EntityFactory(profile.domain, seed=profile.seed)
    lo = shard_index * shard_size
    hi = min(total, lo + shard_size)

    schema = Schema(profile.domain.attribute_names())
    left_renderer = _Renderer(
        factory, "a", profile.synonym_rate_left, profile.noise_left
    )
    right_renderer = _Renderer(
        factory, "b", profile.synonym_rate_right, profile.noise_right
    )
    left = RecordStore(f"{profile.name}/A[{shard_index}]", schema)
    right = RecordStore(f"{profile.name}/B[{shard_index}]", schema)
    matches: set[tuple[str, str]] = set()
    boundary = profile.n_matches + profile.left_extra
    for entity in factory.entity_range(lo, hi, profile.family_fraction):
        rng = _render_rng(profile, entity.entity_id)
        if entity.entity_id < profile.n_matches:
            left_record = left_renderer.render(entity, rng)
            right_record = right_renderer.render(entity, rng)
            left.add(left_record)
            right.add(right_record)
            matches.add((left_record.record_id, right_record.record_id))
        elif entity.entity_id < boundary:
            left.add(left_renderer.render(entity, rng))
        else:
            right.add(right_renderer.render(entity, rng))
    return SourcePair(
        name=f"{profile.name}[{shard_index}/{n_shards}]",
        left=left,
        right=right,
        matches=frozenset(matches),
        vocabulary=factory.vocabulary,
    )


def _generate_sharded(profile: GeneratorProfile, shard_size: int) -> SourcePair:
    """All shards of *profile*, merged back into one source pair."""
    factory = EntityFactory(profile.domain, seed=profile.seed)
    schema = Schema(profile.domain.attribute_names())
    left = RecordStore(f"{profile.name}/A", schema)
    right = RecordStore(f"{profile.name}/B", schema)
    matches: set[tuple[str, str]] = set()
    for shard_index in range(shard_count(profile, shard_size)):
        shard = generate_shard(profile, shard_index, shard_size, factory=factory)
        for record in shard.left:
            left.add(record)
        for record in shard.right:
            right.add(record)
        matches.update(shard.matches)
    return SourcePair(
        name=profile.name,
        left=left,
        right=right,
        matches=frozenset(matches),
        vocabulary=factory.vocabulary,
    )


def _token_index(records: Sequence[Record]) -> dict[str, list[int]]:
    index: dict[str, list[int]] = {}
    for position, record in enumerate(records):
        for token in record.tokens():
            index.setdefault(token, []).append(position)
    return index


def hard_negative_candidates(
    sources: SourcePair, per_left: int = 5
) -> list[tuple[float, str, str]]:
    """Most similar non-matching (left, right) pairs by token Jaccard.

    For every left record, the ``per_left`` highest-Jaccard non-matching
    right records are collected through an inverted token index (so only
    pairs sharing at least one token are scored). Returns
    (similarity, left_id, right_id) sorted by descending similarity —
    the pool that strict blocking would forward to matching.
    """
    right_records = sources.right.records()
    index = _token_index(right_records)
    results: list[tuple[float, str, str]] = []
    for left_record in sources.left:
        left_tokens = left_record.tokens()
        overlap_counts: dict[int, int] = {}
        for token in left_tokens:
            for position in index.get(token, ()):
                overlap_counts[position] = overlap_counts.get(position, 0) + 1
        scored: list[tuple[float, str]] = []
        for position in overlap_counts:
            right_record = right_records[position]
            key = (left_record.record_id, right_record.record_id)
            if key in sources.matches:
                continue
            similarity = jaccard_similarity(left_tokens, right_record.tokens())
            scored.append((similarity, right_record.record_id))
        scored.sort(key=lambda item: (-item[0], item[1]))
        for similarity, right_id in scored[:per_left]:
            results.append((similarity, left_record.record_id, right_id))
    results.sort(key=lambda item: (-item[0], item[1], item[2]))
    return results


def sample_candidate_pairs(
    sources: SourcePair,
    n_pairs: int,
    positive_fraction: float,
    hard_negative_fraction: float = 0.0,
    match_recall: float = 1.0,
    seed: int = 0,
) -> LabeledPairSet:
    """Build a labeled candidate-pair set from a source pair.

    Parameters
    ----------
    n_pairs:
        Total number of labeled pairs.
    positive_fraction:
        Fraction of pairs that are matches (the imbalance ratio of
        Table III). Capped by the available ground-truth matches.
    hard_negative_fraction:
        Fraction of the negatives drawn from the nearest-neighbour pool
        (strict blocking); the rest are uniform random non-matches (loose
        blocking).
    match_recall:
        Fraction of the *included* positives drawn from the full match set —
        modelling benchmarks whose blocking lost some duplicates.
    """
    if n_pairs < 2:
        raise ValueError(f"n_pairs must be >= 2, got {n_pairs}")
    if not 0.0 < positive_fraction < 1.0:
        raise ValueError(
            f"positive_fraction must be in (0, 1), got {positive_fraction}"
        )
    if not 0.0 <= hard_negative_fraction <= 1.0:
        raise ValueError(
            f"hard_negative_fraction must be in [0, 1], got {hard_negative_fraction}"
        )
    if not 0.0 < match_recall <= 1.0:
        raise ValueError(f"match_recall must be in (0, 1], got {match_recall}")

    rng = np.random.default_rng(seed)
    sorted_matches = sorted(sources.matches)
    available_positives = int(round(len(sorted_matches) * match_recall))
    n_positives = min(int(round(n_pairs * positive_fraction)), available_positives)
    n_positives = max(n_positives, 1)
    n_negatives = n_pairs - n_positives

    chosen_indices = rng.choice(
        len(sorted_matches), size=n_positives, replace=False
    )
    positives = [sorted_matches[i] for i in sorted(chosen_indices)]

    negatives: list[tuple[str, str]] = []
    used: set[tuple[str, str]] = set(positives)
    n_hard = int(round(n_negatives * hard_negative_fraction))
    if n_hard:
        pool = hard_negative_candidates(sources, per_left=8)
        for __, left_id, right_id in pool:
            if len(negatives) >= n_hard:
                break
            key = (left_id, right_id)
            if key in used or key in sources.matches:
                continue
            used.add(key)
            negatives.append(key)

    left_ids = sources.left.ids()
    right_ids = sources.right.ids()
    attempts = 0
    max_attempts = 50 * n_negatives + 1000
    while len(negatives) < n_negatives and attempts < max_attempts:
        attempts += 1
        key = (
            left_ids[int(rng.integers(0, len(left_ids)))],
            right_ids[int(rng.integers(0, len(right_ids)))],
        )
        if key in used or key in sources.matches:
            continue
        used.add(key)
        negatives.append(key)
    if len(negatives) < n_negatives:
        raise RuntimeError(
            f"could only sample {len(negatives)} of {n_negatives} negatives "
            f"for {sources.name!r}"
        )

    pairs = LabeledPairSet()
    for left_id, right_id in positives:
        pairs.add(RecordPair(sources.left.get(left_id), sources.right.get(right_id)), 1)
    for left_id, right_id in negatives:
        pairs.add(RecordPair(sources.left.get(left_id), sources.right.get(right_id)), 0)
    return pairs


def build_task_from_sources(
    sources: SourcePair,
    n_pairs: int,
    positive_fraction: float,
    hard_negative_fraction: float = 0.0,
    match_recall: float = 1.0,
    seed: int = 0,
    name: str | None = None,
) -> MatchingTask:
    """Sample candidate pairs and split them 3:1:1 into a matching task."""
    pairs = sample_candidate_pairs(
        sources,
        n_pairs=n_pairs,
        positive_fraction=positive_fraction,
        hard_negative_fraction=hard_negative_fraction,
        match_recall=match_recall,
        seed=seed,
    )
    training, validation, testing = split_three_way(pairs, seed=seed + 1)
    return MatchingTask(
        name=name if name is not None else sources.name,
        left=sources.left,
        right=sources.right,
        training=training,
        validation=validation,
        testing=testing,
        metadata={
            "vocabulary": sources.vocabulary,
            # Provenance for Table VII: how much of the complete ground
            # truth the sampled candidate set retained (its PC), with PQ
            # being the imbalance ratio by definition.
            "n_source_matches": sources.n_matches,
        },
    )
