"""Corruption channels applied when rendering entities into records.

These are the levers that control benchmark difficulty:

* token-level noise — typos, dropped tokens, abbreviations — degrades
  lexical similarity between duplicates;
* attribute-level noise — missing values — removes evidence entirely;
* *dirty* misplacement reproduces how the dirty DeepMatcher benchmarks were
  built: "for each record, the value of every attribute except 'title' was
  randomly assigned to its 'title' with 50% probability" (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def typo(word: str, rng: np.random.Generator) -> str:
    """Apply one random character edit (substitute/insert/delete/transpose)."""
    if not word:
        return word
    operation = int(rng.integers(0, 4))
    position = int(rng.integers(0, len(word)))
    letter = _ALPHABET[int(rng.integers(0, len(_ALPHABET)))]
    if operation == 0:  # substitute
        return word[:position] + letter + word[position + 1 :]
    if operation == 1:  # insert
        return word[:position] + letter + word[position:]
    if operation == 2 and len(word) > 1:  # delete
        return word[:position] + word[position + 1 :]
    if len(word) > 1:  # transpose
        position = min(position, len(word) - 2)
        return (
            word[:position]
            + word[position + 1]
            + word[position]
            + word[position + 2 :]
        )
    return word


def abbreviate(word: str) -> str:
    """First-letter abbreviation ("john" -> "j")."""
    return word[0] if word else word


@dataclass(frozen=True)
class NoiseModel:
    """Per-token and per-attribute corruption probabilities.

    All rates are probabilities in [0, 1]. ``dirty_misplacement_rate`` is
    only applied by generators building dirty benchmark variants.
    """

    typo_rate: float = 0.0
    drop_rate: float = 0.0
    abbreviate_rate: float = 0.0
    missing_rate: float = 0.0
    dirty_misplacement_rate: float = 0.0
    #: when set, the effective drop rate is drawn per attribute value from
    #: Uniform(drop_rate, drop_rate_max) — some values survive intact, some
    #: become tiny subsets. On long textual records this asymmetry is what
    #: separates the cosine from the Jaccard degree of linearity.
    drop_rate_max: float | None = None

    def __post_init__(self) -> None:
        for field_name in (
            "typo_rate",
            "drop_rate",
            "abbreviate_rate",
            "missing_rate",
            "dirty_misplacement_rate",
        ):
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {rate}")
        if self.drop_rate_max is not None and not (
            self.drop_rate <= self.drop_rate_max <= 1.0
        ):
            raise ValueError(
                f"drop_rate_max must be in [drop_rate, 1], got {self.drop_rate_max}"
            )

    @property
    def is_dirty(self) -> bool:
        return self.dirty_misplacement_rate > 0.0

    def corrupt_tokens(
        self, tokens: list[str], rng: np.random.Generator
    ) -> list[str]:
        """Apply token-level noise; guaranteed to keep at least one token."""
        if not tokens:
            return tokens
        drop_rate = self.drop_rate
        if self.drop_rate_max is not None:
            drop_rate = rng.uniform(self.drop_rate, self.drop_rate_max)
        corrupted: list[str] = []
        for token in tokens:
            if drop_rate and rng.random() < drop_rate and len(tokens) > 1:
                continue
            if self.abbreviate_rate and rng.random() < self.abbreviate_rate:
                token = abbreviate(token)
            elif self.typo_rate and rng.random() < self.typo_rate:
                token = typo(token, rng)
            corrupted.append(token)
        if not corrupted:
            corrupted.append(tokens[int(rng.integers(0, len(tokens)))])
        return corrupted

    def drop_attribute(self, rng: np.random.Generator) -> bool:
        """Decide whether an attribute value goes missing entirely."""
        return bool(self.missing_rate) and rng.random() < self.missing_rate

    def misplace_values(
        self,
        values: dict[str, str],
        title_attribute: str,
        rng: np.random.Generator,
    ) -> dict[str, str]:
        """Dirty-variant corruption: move attribute values into the title.

        For every attribute except the title, with probability
        ``dirty_misplacement_rate`` its value is appended to the title and
        the attribute is blanked — exactly the construction of the dirty
        DeepMatcher benchmarks.
        """
        if not self.is_dirty:
            return dict(values)
        result = dict(values)
        title_parts = [result.get(title_attribute, "")]
        for attribute, value in values.items():
            if attribute == title_attribute or not value:
                continue
            if rng.random() < self.dirty_misplacement_rate:
                title_parts.append(value)
                result[attribute] = ""
        result[title_attribute] = " ".join(part for part in title_parts if part)
        return result
