"""The 13 established benchmarks of Table III, as synthetic profiles.

Each profile encodes (a) the published shape of the original DeepMatcher
dataset — attribute schema, class imbalance, relative size (scaled down by
``_CI_SCALE`` so the full suite runs on a laptop) — and (b) a difficulty
calibration chosen to reproduce the paper's Section V verdicts:

* ``trivial`` (D_s7 Fodors-Zagats): clean records, random negatives — every
  matcher is perfect;
* ``easy`` (D_s1, D_s2, D_d1, D_d2 bibliographic; D_s5 Beer): light noise,
  mostly-random negatives — high linearity;
* ``moderate`` (D_s3, D_d3 iTunes-Amazon; D_t2 Company): synonym divergence
  appears but non-linear matchers still reach near-perfect F1 (low LBM);
* ``hard`` (D_s4, D_d4 Walmart-Amazon; D_s6 Amazon-Google; D_t1 Abt-Buy):
  heavy synonym divergence, typos, missing values and nearest-neighbour
  negatives — the four benchmarks the paper marks challenging.

The dirty variants (D_d1-D_d4) are their structured counterparts re-rendered
with the 50% attribute-misplacement corruption of the original dirty
datasets.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from repro.data.task import MatchingTask
from repro.datasets.entities import (
    DomainSpec,
    beer_domain,
    bibliographic_domain,
    company_domain,
    music_domain,
    product_domain,
    restaurant_domain,
    rich_product_domain,
    software_domain,
)
from repro.datasets.generator import (
    GeneratorProfile,
    build_task_from_sources,
    generate_source_pair,
)
from repro.datasets.noise import NoiseModel

#: Established datasets are generated at roughly 1/4 to 1/8 of the published
#: sizes; the ``size_factor`` argument of :func:`build_established_task`
#: scales further (1.0 = the CI sizes below).
_CI_SCALE = "ci"


@dataclass(frozen=True)
class EstablishedProfile:
    """Generation recipe for one established benchmark."""

    dataset_id: str
    origin: str
    domain: DomainSpec
    n_matches: int
    left_extra: int
    right_extra: int
    n_pairs: int
    positive_fraction: float
    synonym_rate_right: float
    noise: NoiseModel
    hard_negative_fraction: float
    dirty: bool = False
    family_fraction: float = 0.3
    seed: int = 0
    #: override for the right source's noise (textual benchmarks render the
    #: right source as a heavily truncated view, which is what separates the
    #: cosine from the Jaccard degree of linearity on long records).
    noise_right: NoiseModel | None = None


_CLEAN = NoiseModel()
_LIGHT = NoiseModel(typo_rate=0.02, drop_rate=0.01)
_MODERATE = NoiseModel(typo_rate=0.05, drop_rate=0.03, missing_rate=0.04)
_HEAVY = NoiseModel(
    typo_rate=0.09,
    drop_rate=0.06,
    abbreviate_rate=0.04,
    missing_rate=0.10,
)

ESTABLISHED_PROFILES: dict[str, EstablishedProfile] = {
    "Ds1": EstablishedProfile(
        dataset_id="Ds1",
        origin="DBLP-ACM",
        domain=bibliographic_domain("dblp_acm"),
        n_matches=556, left_extra=98, right_extra=18,
        n_pairs=1550, positive_fraction=0.180,
        synonym_rate_right=0.05, noise=NoiseModel(typo_rate=0.01),
        hard_negative_fraction=0.06, seed=101,
    ),
    "Ds2": EstablishedProfile(
        dataset_id="Ds2",
        origin="DBLP-GoogleScholar",
        domain=bibliographic_domain("dblp_scholar"),
        n_matches=577, left_extra=52, right_extra=1400,
        n_pairs=2400, positive_fraction=0.186,
        synonym_rate_right=0.08, noise=_LIGHT,
        hard_negative_fraction=0.10, seed=102,
    ),
    "Ds3": EstablishedProfile(
        dataset_id="Ds3",
        origin="iTunes-Amazon",
        domain=music_domain("itunes_amazon"),
        n_matches=140, left_extra=260, right_extra=400,
        n_pairs=540, positive_fraction=0.245,
        synonym_rate_right=0.38,
        noise=NoiseModel(typo_rate=0.07, drop_rate=0.05, missing_rate=0.10),
        hard_negative_fraction=0.50,
        family_fraction=0.5, seed=103,
    ),
    "Ds4": EstablishedProfile(
        dataset_id="Ds4",
        origin="Walmart-Amazon",
        domain=rich_product_domain("walmart_amazon"),
        n_matches=330, left_extra=425, right_extra=990,
        n_pairs=2050, positive_fraction=0.094,
        synonym_rate_right=0.45,
        noise=NoiseModel(
            typo_rate=0.10, drop_rate=0.06, abbreviate_rate=0.04,
            missing_rate=0.18,
        ),
        hard_negative_fraction=0.72,
        family_fraction=0.55, seed=104,
    ),
    "Ds5": EstablishedProfile(
        dataset_id="Ds5",
        origin="Beer",
        domain=beer_domain("beer"),
        n_matches=68, left_extra=130, right_extra=180,
        n_pairs=450, positive_fraction=0.150,
        synonym_rate_right=0.20, noise=_MODERATE,
        hard_negative_fraction=0.35, seed=105,
    ),
    "Ds6": EstablishedProfile(
        dataset_id="Ds6",
        origin="Amazon-Google",
        domain=software_domain("amazon_google"),
        n_matches=330, left_extra=47, right_extra=468,
        n_pairs=1900, positive_fraction=0.102,
        synonym_rate_right=0.50, noise=_HEAVY,
        hard_negative_fraction=0.70,
        family_fraction=0.55, seed=106,
    ),
    "Ds7": EstablishedProfile(
        dataset_id="Ds7",
        origin="Fodors-Zagats",
        domain=restaurant_domain("fodors_zagats"),
        n_matches=110, left_extra=110, right_extra=220,
        n_pairs=950, positive_fraction=0.116,
        synonym_rate_right=0.0, noise=_CLEAN,
        hard_negative_fraction=0.0, seed=107,
    ),
    "Dt1": EstablishedProfile(
        dataset_id="Dt1",
        origin="Abt-Buy",
        domain=product_domain("abt_buy"),
        n_matches=270, left_extra=30, right_extra=30,
        n_pairs=1200, positive_fraction=0.107,
        synonym_rate_right=0.42, noise=_HEAVY,
        hard_negative_fraction=0.65,
        family_fraction=0.55, seed=108,
    ),
    "Dt2": EstablishedProfile(
        dataset_id="Dt2",
        origin="Company",
        domain=company_domain("company"),
        n_matches=350, left_extra=150, right_extra=150,
        n_pairs=1400, positive_fraction=0.246,
        synonym_rate_right=0.15,
        noise=NoiseModel(typo_rate=0.02, drop_rate=0.02),
        noise_right=NoiseModel(typo_rate=0.03, drop_rate=0.05, drop_rate_max=0.92),
        hard_negative_fraction=0.50, seed=109,
    ),
}

# Dirty variants: the structured profile re-rendered with 50% misplacement.
for _structured_id, _dirty_id in (
    ("Ds1", "Dd1"),
    ("Ds2", "Dd2"),
    ("Ds3", "Dd3"),
    ("Ds4", "Dd4"),
):
    _base = ESTABLISHED_PROFILES[_structured_id]
    ESTABLISHED_PROFILES[_dirty_id] = replace(
        _base,
        dataset_id=_dirty_id,
        origin=_base.origin + " (dirty)",
        dirty=True,
    )

#: Canonical dataset order used by every table and figure.
ESTABLISHED_ORDER: tuple[str, ...] = (
    "Ds1", "Ds2", "Ds3", "Ds4", "Ds5", "Ds6", "Ds7",
    "Dd1", "Dd2", "Dd3", "Dd4",
    "Dt1", "Dt2",
)


def _scaled(value: int, size_factor: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * size_factor)))


#: (dataset_id) keys already warned about clamping, so a sweep over many
#: size factors emits one warning per dataset, not one per build.
_CLAMP_WARNED: set[str] = set()


def _reset_clamp_warnings() -> None:
    """Forget previous clamp warnings (test isolation hook)."""
    _CLAMP_WARNED.clear()


def effective_scale(dataset_id: str, size_factor: float) -> dict[str, float]:
    """The size factor actually realized after the generation minimums.

    ``_scaled`` floors ``n_matches`` at 20 and ``n_pairs`` at 60, so tiny
    requested factors silently produce datasets larger than asked for.
    Returns the requested factor, the effective per-dimension factors,
    and whether any floor fired — the provenance that
    :func:`build_established_task` records in the task metadata and
    snapshots surface per dataset.
    """
    if dataset_id not in ESTABLISHED_PROFILES:
        raise KeyError(
            f"unknown dataset {dataset_id!r}; known: {sorted(ESTABLISHED_PROFILES)}"
        )
    profile = ESTABLISHED_PROFILES[dataset_id]
    matches_effective = (
        _scaled(profile.n_matches, size_factor, minimum=20) / profile.n_matches
    )
    pairs_effective = (
        _scaled(profile.n_pairs, size_factor, minimum=60) / profile.n_pairs
    )
    clamped = (
        int(round(profile.n_matches * size_factor)) < 20
        or int(round(profile.n_pairs * size_factor)) < 60
    )
    return {
        "requested": size_factor,
        "n_matches": matches_effective,
        "n_pairs": pairs_effective,
        "clamped": clamped,
    }


def build_established_task(
    dataset_id: str, size_factor: float = 1.0
) -> MatchingTask:
    """Generate one established benchmark as a :class:`MatchingTask`.

    ``size_factor`` scales all counts (1.0 = CI scale, ~4.0 approaches the
    published sizes). Generation is fully deterministic per dataset id.
    """
    if dataset_id not in ESTABLISHED_PROFILES:
        raise KeyError(
            f"unknown dataset {dataset_id!r}; known: {sorted(ESTABLISHED_PROFILES)}"
        )
    if size_factor <= 0:
        raise ValueError(f"size_factor must be > 0, got {size_factor}")
    profile = ESTABLISHED_PROFILES[dataset_id]

    noise_left = profile.noise
    noise_right = profile.noise_right if profile.noise_right is not None else profile.noise
    if profile.dirty:
        noise_left = replace(noise_left, dirty_misplacement_rate=0.5)
        noise_right = replace(noise_right, dirty_misplacement_rate=0.5)

    generator_profile = GeneratorProfile(
        name=dataset_id,
        domain=profile.domain,
        n_matches=_scaled(profile.n_matches, size_factor, minimum=20),
        left_extra=_scaled(profile.left_extra, size_factor, minimum=0),
        right_extra=_scaled(profile.right_extra, size_factor, minimum=0),
        synonym_rate_left=0.0,
        synonym_rate_right=profile.synonym_rate_right,
        noise_left=noise_left,
        noise_right=noise_right,
        family_fraction=profile.family_fraction,
        seed=profile.seed,
    )
    scale_info = effective_scale(dataset_id, size_factor)
    if scale_info["clamped"] and dataset_id not in _CLAMP_WARNED:
        _CLAMP_WARNED.add(dataset_id)
        warnings.warn(
            f"{dataset_id}: size factor {size_factor} hits the generation "
            f"minimums (20 matches / 60 pairs); effective factors are "
            f"{scale_info['n_matches']:.3f} (matches) / "
            f"{scale_info['n_pairs']:.3f} (pairs)",
            stacklevel=2,
        )

    sources = generate_source_pair(generator_profile)
    task = build_task_from_sources(
        sources,
        n_pairs=_scaled(profile.n_pairs, size_factor, minimum=60),
        positive_fraction=profile.positive_fraction,
        hard_negative_fraction=profile.hard_negative_fraction,
        seed=profile.seed + 7,
        name=dataset_id,
    )
    # Scale provenance: what was asked for vs what the minimums produced.
    task.metadata["scale"] = scale_info
    return task
