"""Dataset registry: id-based loading with in-process caching.

Dataset generation is deterministic but not free (hard-negative mining is
O(n * overlap)); the registry memoizes built datasets so the experiment
harness and the test suite can request the same benchmark repeatedly.
"""

from __future__ import annotations

from repro.data.task import MatchingTask
from repro.datasets.established import (
    ESTABLISHED_ORDER,
    ESTABLISHED_PROFILES,
    build_established_task,
)
from repro.datasets.generator import SourcePair
from repro.datasets.sources import (
    NEW_BENCHMARK_LABELS,
    SOURCE_ORDER,
    SOURCE_PROFILES,
    build_source_pair,
)

#: The 13 established benchmark ids in Table III order.
ESTABLISHED_DATASET_IDS: tuple[str, ...] = ESTABLISHED_ORDER

#: The 8 Table V source-pair ids in D_n1..D_n8 order.
SOURCE_DATASET_IDS: tuple[str, ...] = SOURCE_ORDER

_task_cache: dict[tuple[str, float], MatchingTask] = {}
_source_cache: dict[tuple[str, float], SourcePair] = {}


def load_established_task(
    dataset_id: str, size_factor: float = 1.0
) -> MatchingTask:
    """Build (or fetch from cache) one of the 13 established benchmarks."""
    key = (dataset_id, size_factor)
    if key not in _task_cache:
        _task_cache[key] = build_established_task(dataset_id, size_factor)
    return _task_cache[key]


def load_source_pair(dataset_id: str, size_factor: float = 1.0) -> SourcePair:
    """Build (or fetch from cache) one of the 8 Table V source pairs."""
    key = (dataset_id, size_factor)
    if key not in _source_cache:
        _source_cache[key] = build_source_pair(dataset_id, size_factor)
    return _source_cache[key]


def clear_cache() -> None:
    """Drop all cached datasets (used by tests that probe determinism)."""
    _task_cache.clear()
    _source_cache.clear()


__all__ = [
    "ESTABLISHED_DATASET_IDS",
    "ESTABLISHED_PROFILES",
    "NEW_BENCHMARK_LABELS",
    "SOURCE_DATASET_IDS",
    "SOURCE_PROFILES",
    "clear_cache",
    "load_established_task",
    "load_source_pair",
]
