"""Legacy setup shim.

The reproduction environment has no `wheel` package, so PEP 517 editable
installs fail; `python setup.py develop` (or the sitecustomize .pth fallback)
still works. Configuration lives in pyproject.toml.
"""
from setuptools import setup

setup()
