"""Generate the paper-vs-measured comparison tables of EXPERIMENTS.md.

Runs (or loads from ``.benchcache/``) the full matcher sweeps on the
established and new benchmarks, compares them against the numbers the ICDE
2024 paper reports, and writes the markdown comparison to stdout or a file.

Run with:  python examples/paper_comparison_report.py [output.md]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments.paper_comparison import (
    compare_all,
    render_comparison_markdown,
)
from repro.experiments.runner import ExperimentRunner


def main() -> None:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else None
    runner = ExperimentRunner(
        size_factor=1.0, seed=0, cache_dir=Path(".benchcache")
    )
    print("Comparing against the paper (heavy on a cold cache) ...", file=sys.stderr)
    established, new = compare_all(runner)
    markdown = render_comparison_markdown(established, new)
    if output is None:
        print(markdown)
    else:
        output.write_text(markdown + "\n", encoding="utf-8")
        print(f"written to {output}", file=sys.stderr)


if __name__ == "__main__":
    main()
