"""Build a difficulty continuum from one source dataset.

The paper's future-work section proposes "a series of datasets that cover
the entire continuum of benchmark difficulty". This example realizes it:
the Section VI methodology is run at increasing blocking-recall targets on
one source pair, and each rung's a-priori difficulty is reported — showing
how a single public dataset yields a whole family of benchmarks from easy
to hard.

Run with:  python examples/difficulty_continuum.py [source_id]
"""

from __future__ import annotations

import sys

from repro.core.continuum import difficulty_continuum
from repro.datasets import SOURCE_DATASET_IDS, load_source_pair


def main() -> None:
    source_id = sys.argv[1] if len(sys.argv) > 1 else "amazon_google"
    if source_id not in SOURCE_DATASET_IDS:
        raise SystemExit(
            f"unknown source {source_id!r}; choose from {SOURCE_DATASET_IDS}"
        )
    print(f"Building the difficulty continuum of {source_id} ...\n")
    sources = load_source_pair(source_id)
    points = difficulty_continuum(
        sources, recall_ladder=(0.5, 0.7, 0.9), seed=0
    )

    print(
        f"{'PC target':>9s}  {'K':>3s}  {'|C|':>7s}  {'PQ':>6s}  "
        f"{'linearity':>9s}  {'complexity':>10s}  {'difficulty':>10s}"
    )
    print("-" * 66)
    for point in points:
        blocking = point.benchmark.blocking
        print(
            f"{point.recall_target:9.2f}  "
            f"{blocking.config.k:3d}  "
            f"{blocking.result.n_candidates:7d}  "
            f"{blocking.pairs_quality:6.3f}  "
            f"{point.assessment.max_linearity:9.3f}  "
            f"{point.assessment.complexity.mean:10.3f}  "
            f"{point.difficulty_score:10.3f}"
        )
    print(
        "\nHigher recall targets admit harder positives and more near-miss "
        "negatives:\nthe benchmarks grow monotonically harder along the ladder."
    )


if __name__ == "__main__":
    main()
