"""Audit the 13 established benchmarks with the a-priori measures.

Reproduces the analysis behind Figures 1 and 2 of the paper: for every
established benchmark, the degree of linearity (both similarities) and the
mean complexity score, with the per-measure breakdown for any dataset you
name on the command line.

Run with:  python examples/audit_benchmarks.py [detail_dataset_id]
"""

from __future__ import annotations

import sys

from repro.core.complexity import complexity_profile
from repro.core.linearity import linearity_profile
from repro.datasets import ESTABLISHED_DATASET_IDS, load_established_task


def main() -> None:
    detail = sys.argv[1] if len(sys.argv) > 1 else None

    print(f"{'dataset':8s}  {'F1_CS':>6s}  {'F1_JS':>6s}  {'cmplx':>6s}  verdict")
    print("-" * 48)
    for dataset_id in ESTABLISHED_DATASET_IDS:
        task = load_established_task(dataset_id)
        linearity = linearity_profile(task)
        complexity = complexity_profile(task)
        max_linearity = max(result.max_f1 for result in linearity.values())
        easy = max_linearity > 0.8 or complexity.mean < 0.4
        print(
            f"{dataset_id:8s}  "
            f"{linearity['cosine'].max_f1:6.3f}  "
            f"{linearity['jaccard'].max_f1:6.3f}  "
            f"{complexity.mean:6.3f}  "
            f"{'easy (a-priori)' if easy else 'candidate-challenging'}"
        )
        if dataset_id == detail:
            print("  per-measure complexity breakdown:")
            for group, mean in complexity.group_means().items():
                print(f"    {group:14s} {mean:.3f}")
            for name, value in complexity.scores.items():
                print(f"      {name:4s} {value:.3f}")


if __name__ == "__main__":
    main()
