"""Render the paper's six figures as SVG bar charts.

Uses the dependency-free SVG renderer (no matplotlib offline): Figures 1
and 4 chart the degrees of linearity, 2 and 5 the mean complexity, 3 and 6
the practical measures. Heavy sweeps load from ``.benchcache/`` when
available.

Run with:  python examples/render_figures.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments import figures
from repro.experiments.runner import ExperimentRunner
from repro.experiments.svg import save_figure_svg


def main() -> None:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figures")
    runner = ExperimentRunner(
        size_factor=1.0, seed=0, cache_dir=Path(".benchcache")
    )

    plan = (
        ("fig1", figures.figure1, "Figure 1 — degree of linearity (established)",
         ("f1_cosine", "f1_jaccard")),
        ("fig2", figures.figure2, "Figure 2 — complexity (established)",
         ("mean",)),
        ("fig3", figures.figure3, "Figure 3 — NLB and LBM (established)",
         ("nlb", "lbm")),
        ("fig4", figures.figure4, "Figure 4 — degree of linearity (new)",
         ("f1_cosine", "f1_jaccard")),
        ("fig5", figures.figure5, "Figure 5 — complexity (new)",
         ("mean",)),
        ("fig6", figures.figure6, "Figure 6 — NLB and LBM (new)",
         ("nlb", "lbm")),
    )
    for name, builder, title, series in plan:
        print(f"Building {name} ...", file=sys.stderr)
        figure = builder(runner)
        save_figure_svg(figure, output / f"{name}.svg", title=title, series=series)
        print(f"  wrote {output / f'{name}.svg'}", file=sys.stderr)


if __name__ == "__main__":
    main()
