"""Quickstart: assess the difficulty of one ER benchmark.

Loads a synthetic equivalent of the Walmart-Amazon benchmark (D_s4 in the
paper), runs the two a-priori difficulty measures — the degree of linearity
(Algorithm 1) and the 17 complexity measures — then prices the a-posteriori
measures with a small matcher panel, and prints the paper's four-flag
verdict.

Run with:  python examples/quickstart.py [dataset_id]
"""

from __future__ import annotations

import sys

from repro.core.assessment import assess_benchmark
from repro.core.practical import practical_measures
from repro.datasets import load_established_task
from repro.matchers import EsdeMatcher, MagellanMatcher
from repro.matchers.deep import DeepMatcherNet, EMTransformerNet


def main() -> None:
    dataset_id = sys.argv[1] if len(sys.argv) > 1 else "Ds4"
    print(f"Building benchmark {dataset_id} ...")
    task = load_established_task(dataset_id)
    stats = task.statistics()
    print(
        f"  |D1|={stats.left_size} |D2|={stats.right_size} "
        f"|A|={stats.n_attributes} pairs={len(task.all_pairs())} "
        f"IR={100 * stats.imbalance_ratio:.1f}%"
    )

    print("\nRunning a small matcher panel (a-posteriori evidence) ...")
    linear_f1: dict[str, float] = {}
    non_linear_f1: dict[str, float] = {}
    for matcher in (EsdeMatcher("SA"), EsdeMatcher("SB")):
        result = matcher.evaluate(task)
        linear_f1[result.matcher] = result.f1
        print(f"  [linear]     {result.matcher:18s} F1 = {result.f1_percent:.2f}")
    for matcher in (
        MagellanMatcher("RF"),
        DeepMatcherNet(epochs=15),
        EMTransformerNet("R", epochs=15),
    ):
        result = matcher.evaluate(task)
        non_linear_f1[result.matcher] = result.f1
        print(f"  [non-linear] {result.matcher:18s} F1 = {result.f1_percent:.2f}")

    practical = practical_measures(non_linear_f1, linear_f1)
    print("\nComputing a-priori measures (linearity + complexity) ...")
    assessment = assess_benchmark(task, practical=practical)

    print(f"\n=== Verdict for {dataset_id} ===")
    print(
        f"degree of linearity: cosine {assessment.linearity['cosine'].max_f1:.3f} "
        f"(t={assessment.linearity['cosine'].best_threshold:.2f}), "
        f"jaccard {assessment.linearity['jaccard'].max_f1:.3f}"
    )
    print(f"mean complexity:     {assessment.complexity.mean:.3f}")
    print(f"non-linear boost:    {100 * practical.non_linear_boost:.1f}%")
    print(f"learning margin:     {100 * practical.learning_based_margin:.1f}%")
    print(f"easy by linearity:   {assessment.easy_by_linearity}")
    print(f"easy by complexity:  {assessment.easy_by_complexity}")
    print(f"easy by practical:   {assessment.easy_by_practical}")
    print(f"CHALLENGING:         {assessment.is_challenging}")


if __name__ == "__main__":
    main()
