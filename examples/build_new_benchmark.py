"""Build a new ER benchmark with the Section VI methodology.

Takes one of the 8 raw source-dataset pairs (complete ground truth, no
candidate pairs), tunes DeepBlocker for 90% recall while maximizing
precision, splits the resulting candidates 3:1:1, assesses the benchmark's
difficulty, and exports it in the tableA/tableB/train/valid/test CSV layout
of the public ER benchmarks.

Run with:  python examples/build_new_benchmark.py [source_id] [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.core.assessment import assess_benchmark
from repro.core.methodology import create_benchmark
from repro.data.io import save_task
from repro.datasets import SOURCE_DATASET_IDS, load_source_pair
from repro.datasets.sources import NEW_BENCHMARK_LABELS


def main() -> None:
    source_id = sys.argv[1] if len(sys.argv) > 1 else "abt_buy"
    output = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("new_benchmark")
    if source_id not in SOURCE_DATASET_IDS:
        raise SystemExit(
            f"unknown source {source_id!r}; choose from {SOURCE_DATASET_IDS}"
        )

    print(f"Loading source pair {source_id} ...")
    sources = load_source_pair(source_id)
    print(
        f"  |D1|={len(sources.left)} |D2|={len(sources.right)} "
        f"|M|={sources.n_matches}"
    )

    print("Tuning DeepBlocker for PC >= 0.9 with maximal PQ ...")
    benchmark = create_benchmark(
        sources, label=NEW_BENCHMARK_LABELS[source_id], seed=0
    )
    blocking = benchmark.blocking
    print(f"  winning config: {blocking.config.describe()}")
    print(
        f"  PC={blocking.pair_completeness:.3f} "
        f"PQ={blocking.pairs_quality:.3f} "
        f"|C|={blocking.result.n_candidates}"
    )

    print("Assessing the new benchmark (a-priori measures) ...")
    assessment = assess_benchmark(benchmark.task)
    print(
        f"  linearity: {assessment.max_linearity:.3f}, "
        f"mean complexity: {assessment.complexity.mean:.3f}"
    )
    verdict = "HARD" if not (
        assessment.easy_by_linearity or assessment.easy_by_complexity
    ) else "easy"
    print(f"  a-priori verdict: {verdict}")

    save_task(benchmark.task, output)
    print(f"Benchmark written to {output}/ (tableA/tableB/train/valid/test CSVs)")


if __name__ == "__main__":
    main()
