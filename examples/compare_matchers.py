"""Compare the full matcher roster on one benchmark (a Table IV column).

Runs every matcher of the paper's evaluation — the five DL families at
their default epoch budgets, Magellan's four heads, ZeroER and the six
linear ESDE variants — on one dataset and prints the per-family leaderboard
plus the two aggregate practical measures.

Run with:  python examples/compare_matchers.py [dataset_id]
"""

from __future__ import annotations

import sys

from repro.core.practical import practical_measures
from repro.datasets import ESTABLISHED_DATASET_IDS, load_established_task
from repro.experiments.matcher_suite import (
    evaluate_suite,
    family_of,
    linear_f1_scores,
    non_linear_f1_scores,
)

_FAMILY_TITLES = {
    "dl": "(a) DL-based matching algorithms",
    "ml": "(b) Non-neural, non-linear ML-based matching algorithms",
    "linear": "(c) Non-neural, linear supervised matching algorithms",
}


def main() -> None:
    dataset_id = sys.argv[1] if len(sys.argv) > 1 else "Ds6"
    if dataset_id not in ESTABLISHED_DATASET_IDS:
        raise SystemExit(
            f"unknown dataset {dataset_id!r}; choose from {ESTABLISHED_DATASET_IDS}"
        )
    print(f"Evaluating the full matcher roster on {dataset_id} ...\n")
    task = load_established_task(dataset_id)
    results = evaluate_suite(task)

    for family in ("dl", "ml", "linear"):
        print(_FAMILY_TITLES[family])
        family_results = sorted(
            (result for name, result in results.items() if family_of(name) == family),
            key=lambda result: -result.f1,
        )
        for result in family_results:
            print(
                f"  {result.matcher:24s} F1={result.f1_percent:6.2f}  "
                f"P={result.precision:.2f} R={result.recall:.2f}  "
                f"fit={result.fit_seconds:5.1f}s"
            )
        print()

    practical = practical_measures(
        non_linear_f1_scores(results), linear_f1_scores(results)
    )
    print(f"non-linear boost (NLB):      {100 * practical.non_linear_boost:6.1f}%")
    print(f"learning-based margin (LBM): {100 * practical.learning_based_margin:6.1f}%")
    challenging = practical.is_challenging()
    print(f"practically challenging:     {challenging} (both bars at 5%)")


if __name__ == "__main__":
    main()
