#!/usr/bin/env bash
# Repository verification: byte-compile everything, run the tier-1 test
# suite (ROADMAP.md), the fast fault-injection smoke set, then a
# two-worker parallel regeneration of Figure 3 on a fresh cache.
#
# Usage: scripts/verify.sh [--smoke-only]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

if [[ "${1:-}" != "--smoke-only" ]]; then
    echo "== tier-1 tests =="
    python -m pytest -x -q
fi

echo "== fault-injection smoke =="
python -m pytest -x -q -m fault_smoke

echo "== parallel scheduler smoke (--workers 2) =="
python -m repro fig3 --workers 2 --cache "$(mktemp -d)"

echo "verify: OK"
