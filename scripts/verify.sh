#!/usr/bin/env bash
# Repository verification: byte-compile everything, run the tier-1 test
# suite (ROADMAP.md), the fast fault-injection smoke set, then a
# two-worker parallel regeneration of Table IV with metrics/trace
# observability on a fresh cache, a supervision smoke (hang-injected
# worker replaced by the watchdog, orphaned-lease repair by the doctor),
# a seeded chaos smoke campaign with a doctor audit of the surviving
# cache, the kernel-parity suite, and the overhead/speedup benches.
#
# Usage: scripts/verify.sh [--smoke-only]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

if [[ "${1:-}" != "--smoke-only" ]]; then
    echo "== tier-1 tests =="
    python -m pytest -x -q
fi

echo "== fault-injection smoke =="
python -m pytest -x -q -m fault_smoke

echo "== parallel scheduler + observability smoke (--workers 2 --metrics) =="
SMOKE_CACHE="$(mktemp -d)"
# --no-auto-degrade: this smoke verifies the real fork path even on
# single-core CI boxes where auto-degrade would fall back to sequential.
python -m repro table4 --workers 2 --no-auto-degrade --metrics --cache "$SMOKE_CACHE"
python -m repro trace --last --cache "$SMOKE_CACHE"

echo "== supervision smoke: watchdog hang-kill + lease repair =="
GUARD_CACHE="$(mktemp -d)"
# A wedged worker must be killed by the watchdog and surfaced as a
# WorkerHang failure record while the rest of the sweep completes (two
# datasets: a single sweep unit would run inline and never fork).
python -m repro table4 --datasets Ds5,Ds7 --scale 0.3 --workers 2 --no-auto-degrade \
    --hang-deadline 5 --inject 'guard:hang=hang' \
    --cache "$GUARD_CACHE" | tee /tmp/guard_smoke.out
grep -q "WorkerHang" /tmp/guard_smoke.out
# An orphaned lease (dead owner pid) must fail a doctor audit, be
# repaired, and leave the directory clean.
printf '{"pid": 4194305, "host": "ghost", "token": "dead", "acquired_at": 0, "heartbeat_at": 0}' \
    > "$GUARD_CACHE/run.lease"
if python -m repro doctor --check --cache "$GUARD_CACHE"; then
    echo "doctor --check missed the orphaned lease" >&2
    exit 1
fi
python -m repro doctor --cache "$GUARD_CACHE"
python -m repro doctor --check --cache "$GUARD_CACHE"

echo "== chaos smoke campaign (3 seeded plans) + doctor repair/audit =="
CHAOS_CACHE="$(mktemp -d)"
python -m repro chaos --plans 3 --scale 0.3 --datasets Ds5 --cache "$CHAOS_CACHE"
# Repair whatever the faults left behind (torn journal tails stay on disk
# until compacted), then a clean audit must pass: repair is idempotent.
python -m repro doctor --cache "$CHAOS_CACHE"
python -m repro doctor --check --cache "$CHAOS_CACHE"

echo "== vectorized-kernel parity (golden oracle) =="
python -m pytest -x -q tests/text/test_kernels.py tests/text/test_feature_store.py \
    tests/matchers/test_feature_parity.py

echo "== observability + circuit-breaker + supervision overhead benches =="
python -m pytest -x -q benchmarks/bench_obs.py benchmarks/bench_chaos.py \
    benchmarks/bench_guard.py

echo "== feature-kernel speedup bench (>=5x, bit-identical) =="
python -m pytest -x -q benchmarks/bench_kernels.py

echo "== ANN blocking: deterministic-seed smoke + recall/cost floors =="
# Deterministic smoke: two fresh runs of both backends on a fixed seed
# must produce identical candidate sets and the provenance CLI must run.
python - <<'EOF'
from repro.blocking import AnnBlocker, AnnConfig
from repro.datasets.sources import build_source_pair

sources = build_source_pair("abt_buy", 0.3)
for backend in ("lsh", "graph"):
    config = AnnConfig(backend=backend, seed=7)
    first = AnnBlocker(config).candidates(sources)
    second = AnnBlocker(config).candidates(sources)
    assert first == second, f"{backend} backend is not deterministic"
    assert first, f"{backend} backend produced no candidates"
print("ann determinism smoke: OK")
EOF
python -m repro blocking --scale 0.3 --datasets abt_buy --cache ''
# Full cost/recall bench (writes BENCH_ann.json), then re-check the
# recorded floors: tuned LSH must meet the recall floor at >= the
# candidate-reduction floor over the exhaustive baseline.
python -m pytest -x -q -m ann_bench benchmarks/bench_ann.py
python - <<'EOF'
import json
record = json.load(open("BENCH_ann.json"))
lsh = record["backends"]["lsh"]
assert record["deterministic"], "BENCH_ann.json: tuned config not deterministic"
assert lsh["pair_completeness"] >= record["pc_floor"], (
    f"BENCH_ann.json: LSH recall {lsh['pair_completeness']} below "
    f"{record['pc_floor']}"
)
assert record["candidate_reduction"] >= record["reduction_floor"], (
    f"BENCH_ann.json: reduction {record['candidate_reduction']}x below "
    f"{record['reduction_floor']}x"
)
print("ann recall-floor check: OK")
EOF

echo "verify: OK"
