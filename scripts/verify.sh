#!/usr/bin/env bash
# Repository verification: byte-compile everything, run the tier-1 test
# suite (ROADMAP.md), the fast fault-injection smoke set, then a
# two-worker parallel regeneration of Table IV with metrics/trace
# observability on a fresh cache, a supervision smoke (hang-injected
# worker replaced by the watchdog, orphaned-lease repair by the doctor),
# a seeded chaos smoke campaign with a doctor audit of the surviving
# cache, the kernel-parity suite, the overhead/speedup benches, and the
# scale-mode stage (budgeted sharded sweep, SIGKILL/doctor/resume
# parity, BENCH_scale.json floor re-check).
#
# Usage: scripts/verify.sh [--smoke-only]
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

if [[ "${1:-}" != "--smoke-only" ]]; then
    echo "== tier-1 tests =="
    python -m pytest -x -q
fi

echo "== fault-injection smoke =="
python -m pytest -x -q -m fault_smoke

echo "== parallel scheduler + observability smoke (--workers 2 --metrics) =="
SMOKE_CACHE="$(mktemp -d)"
# --no-auto-degrade: this smoke verifies the real fork path even on
# single-core CI boxes where auto-degrade would fall back to sequential.
python -m repro table4 --workers 2 --no-auto-degrade --metrics --cache "$SMOKE_CACHE"
python -m repro trace --last --cache "$SMOKE_CACHE"

echo "== supervision smoke: watchdog hang-kill + lease repair =="
GUARD_CACHE="$(mktemp -d)"
# A wedged worker must be killed by the watchdog and surfaced as a
# WorkerHang failure record while the rest of the sweep completes (two
# datasets: a single sweep unit would run inline and never fork).
python -m repro table4 --datasets Ds5,Ds7 --scale 0.3 --workers 2 --no-auto-degrade \
    --hang-deadline 5 --inject 'guard:hang=hang' \
    --cache "$GUARD_CACHE" | tee /tmp/guard_smoke.out
grep -q "WorkerHang" /tmp/guard_smoke.out
# An orphaned lease (dead owner pid) must fail a doctor audit, be
# repaired, and leave the directory clean.
printf '{"pid": 4194305, "host": "ghost", "token": "dead", "acquired_at": 0, "heartbeat_at": 0}' \
    > "$GUARD_CACHE/run.lease"
if python -m repro doctor --check --cache "$GUARD_CACHE"; then
    echo "doctor --check missed the orphaned lease" >&2
    exit 1
fi
python -m repro doctor --cache "$GUARD_CACHE"
python -m repro doctor --check --cache "$GUARD_CACHE"

echo "== chaos smoke campaign (3 seeded plans) + doctor repair/audit =="
CHAOS_CACHE="$(mktemp -d)"
python -m repro chaos --plans 3 --scale 0.3 --datasets Ds5 --cache "$CHAOS_CACHE"
# Repair whatever the faults left behind (torn journal tails stay on disk
# until compacted), then a clean audit must pass: repair is idempotent.
python -m repro doctor --cache "$CHAOS_CACHE"
python -m repro doctor --check --cache "$CHAOS_CACHE"

echo "== vectorized-kernel parity (golden oracle) =="
python -m pytest -x -q tests/text/test_kernels.py tests/text/test_feature_store.py \
    tests/matchers/test_feature_parity.py

echo "== observability + circuit-breaker + supervision overhead benches =="
python -m pytest -x -q benchmarks/bench_obs.py benchmarks/bench_chaos.py \
    benchmarks/bench_guard.py

echo "== feature-kernel speedup bench (>=5x, bit-identical) =="
python -m pytest -x -q benchmarks/bench_kernels.py

echo "== ANN blocking: deterministic-seed smoke + recall/cost floors =="
# Deterministic smoke: two fresh runs of both backends on a fixed seed
# must produce identical candidate sets and the provenance CLI must run.
python - <<'EOF'
from repro.blocking import AnnBlocker, AnnConfig
from repro.datasets.sources import build_source_pair

sources = build_source_pair("abt_buy", 0.3)
for backend in ("lsh", "graph"):
    config = AnnConfig(backend=backend, seed=7)
    first = AnnBlocker(config).candidates(sources)
    second = AnnBlocker(config).candidates(sources)
    assert first == second, f"{backend} backend is not deterministic"
    assert first, f"{backend} backend produced no candidates"
print("ann determinism smoke: OK")
EOF
python -m repro blocking --scale 0.3 --datasets abt_buy --cache ''
# Full cost/recall bench (writes BENCH_ann.json), then re-check the
# recorded floors: tuned LSH must meet the recall floor at >= the
# candidate-reduction floor over the exhaustive baseline.
python -m pytest -x -q -m ann_bench benchmarks/bench_ann.py
python - <<'EOF'
import json
record = json.load(open("BENCH_ann.json"))
lsh = record["backends"]["lsh"]
assert record["deterministic"], "BENCH_ann.json: tuned config not deterministic"
assert lsh["pair_completeness"] >= record["pc_floor"], (
    f"BENCH_ann.json: LSH recall {lsh['pair_completeness']} below "
    f"{record['pc_floor']}"
)
assert record["candidate_reduction"] >= record["reduction_floor"], (
    f"BENCH_ann.json: reduction {record['candidate_reduction']}x below "
    f"{record['reduction_floor']}x"
)
print("ann recall-floor check: OK")
EOF

echo "== serve: session smoke (add 100, query 50, offline parity) =="
# A resident session must answer queries while absorbing incremental
# adds without ever rebuilding its index, and its predictions must be
# bit-identical to the offline matcher on the same candidate pairs.
python - <<'EOF'
from repro import obs as obs_package
from repro.data.pairs import LabeledPairSet, RecordPair
from repro.data.records import Record
from repro.datasets.generator import build_task_from_sources
from repro.datasets.sources import build_source_pair
from repro.experiments.matcher_suite import build_matcher
from repro.obs import Observability
from repro.serve import open_session

sources = build_source_pair("dblp_scholar", 0.5)
task = build_task_from_sources(
    sources, n_pairs=300, positive_fraction=0.25, seed=0, name="serve_smoke"
)
with obs_package.use(Observability()) as o:
    session = open_session(task, k=10, seed=0)
    donors = task.right.records()
    session.add_records(
        [Record(f"smoke_{i}", donors[i % len(donors)].source,
                dict(donors[i % len(donors)].values)) for i in range(100)]
    )
    probes = task.left.records()[:50]
    results = session.query_batch(probes)
    assert o.metrics.counter("blocking.ann.index_builds") == 1.0, (
        "incremental add rebuilt the index"
    )

pair_set = LabeledPairSet()
online = {}
for probe, result in zip(probes, results):
    for record_id, verdict in zip(result.candidates.ids, result.predictions):
        key = (probe.record_id, record_id)
        online[key] = verdict
        if key not in pair_set and record_id in task.right:
            pair_set.add(RecordPair(probe, task.right.get(record_id)), 0)
offline = build_matcher(task, session.config.matcher, 0)
offline.fit(task)
mismatches = sum(
    int(int(v) != online[pair.key])
    for pair, v in zip(pair_set.pairs, offline.predict(pair_set))
)
assert len(pair_set) > 0, "serve smoke produced no candidate pairs"
assert mismatches == 0, f"{mismatches} serve/offline prediction mismatches"
print(f"serve parity smoke: OK ({len(pair_set)} pairs, 0 mismatches)")
EOF
# Live loop smoke: the JSONL protocol end to end over a real pipe.
python -m pytest -x -q tests/serve/test_loop.py -m "not slow"
# Serving throughput/latency bench (writes BENCH_serve.json), then
# re-check the recorded floors.
python -m pytest -x -q -m serve_bench benchmarks/bench_serve.py
python - <<'EOF'
import json
record = json.load(open("BENCH_serve.json"))
assert record["queries_per_second"] >= record["qps_floor"], (
    f"BENCH_serve.json: {record['queries_per_second']} qps below "
    f"{record['qps_floor']}"
)
assert record["index_builds"] == 1.0, "BENCH_serve.json: index was rebuilt"
assert record["parity_mismatches"] == 0, "BENCH_serve.json: parity broken"
print("serve throughput-floor check: OK")
EOF

echo "== serve frontend: overload shed + admitted parity + SIGTERM drain =="
# A real socket daemon under a concurrent overload burst: excess load is
# shed with structured 'overloaded' responses, every admitted answer is
# bit-identical across the burst AND to the offline session restored
# from the snapshot the SIGTERM drain writes, and the drained state
# directory passes a doctor audit untouched.
FRONTEND_STATE="$(mktemp -d)/state"
python - "$FRONTEND_STATE" <<'EOF'
import json, signal, socket, subprocess, sys, threading

state = sys.argv[1]
proc = subprocess.Popen(
    [sys.executable, "-m", "repro", "serve", "dblp_scholar",
     "--scale", "0.3", "--k", "3", "--state", state,
     "--listen", "127.0.0.1:0", "--max-queue", "2"],
    stdout=subprocess.PIPE, text=True,
)
ready = json.loads(proc.stdout.readline())
assert ready.get("event") == "ready", ready
host, _, port = ready["address"].rpartition(":")

from repro.datasets.sources import build_source_pair
probes = [
    {"record_id": r.record_id, "source": r.source, "values": dict(r.values)}
    for r in build_source_pair("dblp_scholar", 0.3).left.records()[:40]
]

def run_client(requests, out, key):
    sock = socket.create_connection((host, int(port)), timeout=60)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    handle = sock.makefile("r", encoding="utf-8")
    responses = []
    for request in requests:
        sock.sendall((json.dumps(request) + "\n").encode())
        responses.append(json.loads(handle.readline()))
    sock.close()
    out[key] = responses

requests = [{"op": "query", "record": p, "k": 3} for p in probes]
serial_out = {}
run_client(requests, serial_out, "serial")
serial = {
    r["result"]["query_id"]: r["result"] for r in serial_out["serial"]
}
assert len(serial) == len(probes), "serial phase dropped answers"

burst_out = {}
threads = [
    threading.Thread(target=run_client, args=(requests, burst_out, i))
    for i in range(4)
]
for t in threads: t.start()
for t in threads: t.join()
flat = [r for rs in burst_out.values() for r in rs]
shed = [r for r in flat if r.get("error") == "overloaded"]
admitted = [r for r in flat if r.get("ok")]
hard = [r for r in flat if not r.get("ok")
        and r.get("error") not in ("overloaded", "deadline_exceeded")]
assert shed, "overload burst never shed"
assert not hard, f"hard failures under overload: {hard[:3]}"
mismatched = sum(
    1 for r in admitted if r["result"] != serial[r["result"]["query_id"]]
)
assert mismatched == 0, f"{mismatched} admitted answers diverged under load"

proc.send_signal(signal.SIGTERM)
assert proc.wait(timeout=300) == 0, "SIGTERM drain did not exit cleanly"

# Offline parity: the drained snapshot answers like the live daemon did.
from repro.data.records import Record
from repro.serve import MatcherSession
from repro.serve.loop import SNAPSHOT_NAME
restored = MatcherSession.load(f"{state}/{SNAPSHOT_NAME}")
offline_mismatches = sum(
    1 for p in probes
    if restored.query(
        Record(p["record_id"], p["source"], dict(p["values"])), 3
    ).to_dict() != serial[p["record_id"]]
)
assert offline_mismatches == 0, (
    f"{offline_mismatches} drained-snapshot answers diverge from live"
)
print(f"frontend overload smoke: OK ({len(shed)} shed, "
      f"{len(admitted)} admitted, 0 mismatches)")
EOF
# The drained state directory must audit clean as-is.
python -m repro doctor --check --cache "$FRONTEND_STATE"
# Front-end unit/integration suite, then the overload bench + floors.
python -m pytest -x -q tests/serve/test_frontend.py \
    tests/serve/test_frontend_chaos.py -m "not slow"
python -m pytest -x -q -m frontend_bench benchmarks/bench_frontend.py
python - <<'EOF'
import json
record = json.load(open("BENCH_frontend.json"))
assert record["shed"] > 0, "BENCH_frontend.json: no shedding at 4x load"
assert record["parity_mismatches"] == 0, "BENCH_frontend.json: parity broken"
assert record["hard_failures"] == 0, "BENCH_frontend.json: hard failures"
assert record["admitted_p99_seconds"] <= (
    record["p99_ratio_ceiling"] * record["baseline_p99_seconds"]
), "BENCH_frontend.json: admitted p99 blew past the ceiling"
print("frontend overload-floor check: OK")
EOF

echo "== scale mode: budgeted sharded sweep + SIGKILL/doctor/resume parity =="
# A 10^4-record sharded run under a memory budget must complete, journal
# every shard, and write its deterministic report.
SCALE_STATE="$(mktemp -d)"
python -m repro scale-up Ds2 --records 10000 --shard-size 500 \
    --memory-budget 4096 --cache '' --state "$SCALE_STATE/clean" \
    --out "$SCALE_STATE/clean.json"
# SIGKILL mid-shard: rerun the same config fresh, kill it the moment the
# first shard lands in the journal (leaving later shards unfinished),
# doctor-audit the survivor state, resume — the resumed final table must
# be bit-identical to the uninterrupted run's.
python - "$SCALE_STATE" <<'EOF'
import os, signal, subprocess, sys, time

state = sys.argv[1]
proc = subprocess.Popen(
    [sys.executable, "-m", "repro", "scale-up", "Ds2",
     "--records", "10000", "--shard-size", "500",
     "--cache", "", "--state", f"{state}/killed"],
    stdout=subprocess.DEVNULL,
)
journal = f"{state}/killed/scale.journal"
deadline = time.time() + 120
while time.time() < deadline:
    try:
        with open(journal, encoding="utf-8") as handle:
            if sum('"scale:shard:' in line for line in handle) >= 1:
                break
    except FileNotFoundError:
        pass
    if proc.poll() is not None:
        sys.exit("scale run exited before it could be killed mid-shard")
    time.sleep(0.02)
else:
    proc.kill()
    sys.exit("no shard journaled before the deadline")
proc.send_signal(signal.SIGKILL)
proc.wait()
print("SIGKILLed the sweep after >=1 journaled shard")
EOF
python -m repro doctor --cache "$SCALE_STATE/killed"
python -m repro scale-up Ds2 --records 10000 --shard-size 500 \
    --cache '' --state "$SCALE_STATE/killed" \
    --out "$SCALE_STATE/resumed.json" | tee /tmp/scale_resume.out
grep -q "resumed from the journal" /tmp/scale_resume.out
python - "$SCALE_STATE" <<'EOF'
import json, sys

state = sys.argv[1]
clean = json.load(open(f"{state}/clean.json"))
resumed = json.load(open(f"{state}/resumed.json"))
assert clean == resumed, "resumed final tables differ from the clean run"
print("scale kill/resume identical-table check: OK")
EOF
# Re-check the recorded throughput/quality floors of the committed
# trajectory (regenerate with: pytest -m scale_bench benchmarks/bench_scale.py).
python - <<'EOF'
import json

record = json.load(open("BENCH_scale.json"))
assert record["trajectory"], "BENCH_scale.json: empty trajectory"
for point in record["trajectory"]:
    records = point["records"]
    assert point["records_per_sec"] >= record["rate_floor"], (
        f"BENCH_scale.json: {records} records at {point['records_per_sec']} "
        f"records/sec, below the {record['rate_floor']} floor"
    )
    assert point["pair_completeness"] >= record["pc_floor"], (
        f"BENCH_scale.json: PC {point['pair_completeness']} at {records} "
        f"records, below {record['pc_floor']}"
    )
    assert point["f1"] >= record["f1_floor"], (
        f"BENCH_scale.json: F1 {point['f1']} at {records} records, below "
        f"{record['f1_floor']}"
    )
assert max(p["records"] for p in record["trajectory"]) >= 1_000_000, (
    "BENCH_scale.json: trajectory never reaches 10^6 records"
)
print("scale throughput-floor check: OK")
EOF

echo "verify: OK"
